//! The k-ary n-cube (torus) fabric: the direct-network backend of the wormhole
//! engine.
//!
//! [`CubeFabric`] materialises a [`TorusSystem`] into the same dense global
//! channel-id space the tree fabric uses, so the engine's occupancy table,
//! route-interning arena and lazy-release machinery run unchanged over it:
//!
//! * **Link channels** — one id per unidirectional router↔router link *and
//!   virtual channel*. For `k > 2` every directed link carries two virtual
//!   channels with the classic Dally–Seitz dateline discipline: a message
//!   travels a ring on VC0 until (and unless) it crosses the ring's wrap-around
//!   edge, from which point it uses VC1. Dimension-order routing corrects
//!   dimensions strictly upwards and a minimal route crosses each ring's wrap
//!   edge at most once, so the channel dependency graph is acyclic and the
//!   torus cannot deadlock — the direct-network analogue of the tree's
//!   up-then-down acquisition order. For `k = 2` a route takes at most one hop
//!   per ring, no intra-ring dependency exists, and a single channel per link
//!   suffices.
//! * **Injection / ejection channels** — two per node at the tail of the id
//!   space, crossed first and last by every message. As in the tree fabric the
//!   injection channel is held for the message's entire network latency, which
//!   keeps the source queue the M/G/1 station the analytical lineage assumes,
//!   and makes every `(src, dst)` itinerary unique (a prerequisite of the
//!   per-pair interning arena).
//!
//! Per-flit times mirror the tree's channel-kind mapping: injection/ejection
//! channels are node↔router connections at `t_cn`, link channels are
//! router↔router connections at `t_cs` (Eqs. 14–15 of the paper, evaluated for
//! the configured flit size).

use crate::channels::{ChannelPool, GlobalChannelId};
use crate::fabric::Itinerary;
use crate::{Result, SimError};
use mcnet_system::{TorusSystem, TrafficConfig};
use mcnet_topology::kary_ncube::CubeHop;
use mcnet_topology::{KaryNCube, NodeId};

/// A torus mapped into the global channel space.
#[derive(Debug, Clone)]
pub struct CubeFabric {
    torus: TorusSystem,
    cube: KaryNCube,
    /// Per-flit time of injection/ejection (node↔router) channels, `t_cn`.
    t_node: f64,
    /// Per-flit time of router↔router link channels, `t_cs`.
    t_link: f64,
    /// Virtual channels per directed link. The low `escape_vcs` indices are the
    /// escape class (dateline discipline): 2 for `k > 2`, 1 for `k = 2`. Under
    /// [`crate::policy::RoutingPolicy::AdaptiveTorus`] each link carries
    /// additional unrestricted adaptive VCs above the escape class, so
    /// `vcs = escape_vcs + adaptive_vcs`; deterministic fabrics have
    /// `vcs == escape_vcs` and the exact channel numbering of every previous
    /// release.
    vcs: u32,
    /// Virtual channels of the escape (dateline) class, always the low indices.
    escape_vcs: u32,
    /// Directions per dimension: 2 for `k > 2`, 1 for `k = 2` (where +1 and −1
    /// coincide).
    dirs: u32,
    /// Total number of link-channel ids (`num_nodes · n · dirs · vcs`);
    /// injection/ejection ids start here.
    link_channels: u32,
}

impl CubeFabric {
    /// Builds the deterministic torus fabric (escape VCs only — the channel
    /// numbering every interned route and pinned digest depends on).
    pub fn build(torus: &TorusSystem, traffic: &TrafficConfig) -> Result<Self> {
        Self::build_with(torus, traffic, 0)
    }

    /// Builds the torus fabric with `adaptive_vcs` unrestricted adaptive VCs
    /// per directed link on top of the escape class. `adaptive_vcs == 0` is the
    /// deterministic layout.
    pub fn build_with(
        torus: &TorusSystem,
        traffic: &TrafficConfig,
        adaptive_vcs: u8,
    ) -> Result<Self> {
        traffic.validate().map_err(SimError::from)?;
        let cube = KaryNCube::new(torus.radix(), torus.dimensions()).map_err(SimError::from)?;
        let tech = torus.technology();
        let (dirs, escape_vcs) = if torus.radix() == 2 { (1u32, 1u32) } else { (2u32, 2u32) };
        let vcs = escape_vcs + adaptive_vcs as u32;
        let link_channels = (cube.num_nodes() * cube.dimensions()) as u32 * dirs * vcs;
        Ok(CubeFabric {
            torus: torus.clone(),
            cube,
            t_node: tech.node_channel_time(traffic.flit_bytes),
            t_link: tech.switch_channel_time(traffic.flit_bytes),
            vcs,
            escape_vcs,
            dirs,
            link_channels,
        })
    }

    /// The system description the fabric was built from.
    pub fn torus(&self) -> &TorusSystem {
        &self.torus
    }

    /// The underlying topology.
    pub fn cube(&self) -> &KaryNCube {
        &self.cube
    }

    /// Total number of channels (links × VCs plus injection/ejection).
    pub fn num_channels(&self) -> usize {
        self.link_channels as usize + 2 * self.cube.num_nodes()
    }

    /// Per-flit node↔router channel time.
    pub fn t_node(&self) -> f64 {
        self.t_node
    }

    /// Per-flit router↔router channel time.
    pub fn t_link(&self) -> f64 {
        self.t_link
    }

    /// Per-flit transfer time of one global channel.
    #[inline]
    pub fn flit_time(&self, ch: GlobalChannelId) -> f64 {
        debug_assert!((ch as usize) < self.num_channels());
        if ch < self.link_channels {
            self.t_link
        } else {
            self.t_node
        }
    }

    /// Virtual channels per directed link (2 under the dateline discipline,
    /// 1 for `k = 2`, plus any adaptive VCs).
    pub fn virtual_channels(&self) -> u32 {
        self.vcs
    }

    /// Virtual channels of the escape (dateline) class per directed link.
    pub fn escape_vcs(&self) -> u32 {
        self.escape_vcs
    }

    /// Unrestricted adaptive virtual channels per directed link (0 on a
    /// deterministic fabric).
    pub fn adaptive_vcs(&self) -> u32 {
        self.vcs - self.escape_vcs
    }

    /// The ring coordinate of `node` in dimension `dim`.
    #[inline]
    fn digit(&self, node: usize, dim: usize) -> usize {
        let k = self.torus.radix();
        (node / k.pow(dim as u32)) % k
    }

    /// `true` if taking `hop` out of `from` crosses its ring's wrap-around
    /// (dateline) edge — the event that forces the escape class onto VC1.
    #[inline]
    pub fn hop_wraps(&self, from: usize, hop: &CubeHop) -> bool {
        self.cube.hop_crosses_dateline(self.digit(from, hop.dimension), hop.direction)
    }

    /// The adaptive-class channel ids of one hop leaving `from` (empty on a
    /// deterministic fabric). Adaptive VCs are unrestricted: any of them is
    /// legal for any minimal hop, with deadlock freedom guaranteed by the
    /// always-reachable escape class (Duato's protocol).
    #[inline]
    pub fn adaptive_link_channels(
        &self,
        from: usize,
        hop: &CubeHop,
    ) -> std::ops::Range<GlobalChannelId> {
        let base = self.link_channel(from, hop, self.escape_vcs);
        base..base + self.adaptive_vcs()
    }

    /// The escape-class channel of one hop leaving `from`: the dateline VC the
    /// deterministic dimension-order route would use. `wrapped` must be `true`
    /// if the message has already crossed this dimension's wrap edge on any
    /// earlier hop (adaptive or escape) — a message past the dateline must
    /// never re-enter VC0, or the escape class's dependency graph would cycle.
    #[inline]
    pub fn escape_channel(&self, from: usize, hop: &CubeHop, wrapped: bool) -> GlobalChannelId {
        let vc = if self.escape_vcs > 1 && (wrapped || self.hop_wraps(from, hop)) { 1 } else { 0 };
        self.link_channel(from, hop, vc)
    }

    /// The injection channel of a node (crossed first by every message it sends).
    #[inline]
    pub fn injection(&self, node: usize) -> GlobalChannelId {
        self.link_channels + 2 * node as u32
    }

    /// The ejection channel of a node (crossed last by every message it receives).
    #[inline]
    pub fn ejection(&self, node: usize) -> GlobalChannelId {
        self.link_channels + 2 * node as u32 + 1
    }

    /// The sub-ring neighborhood of a node — the torus analogue of the cluster
    /// index used for the intra/inter message classification and the
    /// locality-favouring traffic pattern.
    #[inline]
    pub fn neighborhood_of(&self, node: usize) -> usize {
        node / self.torus.radix()
    }

    /// The channel id of one routed hop leaving `from`, on the virtual channel
    /// selected by the dateline discipline (`vc` is 0 before the ring's wrap
    /// edge, 1 from the wrap hop onwards; always 0 for `k = 2`). Exposed so
    /// equivalence tests can check interned routes against
    /// [`KaryNCube::route`] channel-by-channel.
    pub fn link_channel(&self, from: usize, hop: &CubeHop, vc: u32) -> GlobalChannelId {
        let dir_idx = if self.dirs == 1 || hop.direction == 1 { 0u32 } else { 1u32 };
        let per_node = self.cube.dimensions() as u32 * self.dirs * self.vcs;
        from as u32 * per_node + (hop.dimension as u32 * self.dirs + dir_idx) * self.vcs + vc
    }

    /// All virtual-channel ids of the directed ring link leaving `from` in
    /// dimension `dim` (`positive` selects the +1 or −1 direction; for `k = 2`
    /// the two coincide on the single channel). Fault targets resolve through
    /// this: cutting a ring edge means disabling every VC of the directed link.
    pub fn directed_link_channels(
        &self,
        from: usize,
        dim: usize,
        positive: bool,
    ) -> Vec<GlobalChannelId> {
        debug_assert!(from < self.cube.num_nodes() && dim < self.cube.dimensions());
        let dir_idx = if self.dirs == 1 || positive { 0u32 } else { 1u32 };
        let per_node = self.cube.dimensions() as u32 * self.dirs * self.vcs;
        let base = from as u32 * per_node + (dim as u32 * self.dirs + dir_idx) * self.vcs;
        (base..base + self.vcs).collect()
    }

    /// The ring neighbour of `node` in dimension `dim` (`positive` picks the
    /// +1 or −1 direction; they coincide for `k = 2`).
    pub fn ring_neighbor(&self, node: usize, dim: usize, positive: bool) -> usize {
        let k = self.torus.radix();
        let stride = k.pow(dim as u32);
        let coord = (node / stride) % k;
        let next = if positive { (coord + 1) % k } else { (coord + k - 1) % k };
        node - coord * stride + next * stride
    }

    /// Every channel incident to one node's router: its injection and ejection
    /// channels plus all VCs of every directed link leaving or entering it —
    /// the channel set a whole-switch fault disables. Sorted and deduplicated
    /// (for `k = 2` the two directions share channels).
    pub fn switch_channels(&self, node: usize) -> Vec<GlobalChannelId> {
        let mut out = vec![self.injection(node), self.ejection(node)];
        for dim in 0..self.cube.dimensions() {
            for positive in [true, false] {
                out.extend(self.directed_link_channels(node, dim, positive));
                let neighbor = self.ring_neighbor(node, dim, positive);
                out.extend(self.directed_link_channels(neighbor, dim, !positive));
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Creates the channel-occupancy pool matching this fabric.
    pub fn channel_pool(&self) -> ChannelPool {
        let mut flit_times = vec![self.t_link; self.link_channels as usize];
        flit_times.extend(std::iter::repeat_n(self.t_node, 2 * self.cube.num_nodes()));
        ChannelPool::new(flit_times)
    }

    /// Appends the globalized itinerary of `src → dst` (injection, dimension-order
    /// link channels on dateline-selected VCs, ejection) to `out`, reusing
    /// `hop_scratch` for the topology walk. This is the route the interning
    /// table materialises into its arena; [`CubeFabric::build_path`] is the
    /// freshly-allocated verification view of the same computation.
    pub fn route_into(
        &self,
        src: usize,
        dst: usize,
        hop_scratch: &mut Vec<CubeHop>,
        out: &mut Vec<GlobalChannelId>,
    ) -> Result<()> {
        hop_scratch.clear();
        self.cube
            .route_into(NodeId::from_index(src), NodeId::from_index(dst), hop_scratch)
            .map_err(SimError::from)?;
        // The dateline VC of every hop comes from the topology layer — the one
        // shared definition the analytical torus model also consumes. `vcs == 1`
        // fabrics (k = 2) get all-zero VCs from the same helper.
        let datelines =
            self.cube.dateline_vcs(NodeId::from_index(src), hop_scratch).map_err(SimError::from)?;
        out.push(self.injection(src));
        let mut from = src;
        for (hop, vc) in hop_scratch.iter().zip(datelines) {
            out.push(self.link_channel(from, hop, vc as u32));
            from = hop.node.index();
        }
        debug_assert_eq!(from, dst, "dimension-order route must end at the destination");
        out.push(self.ejection(dst));
        Ok(())
    }

    /// Builds the wormhole itinerary for a message from node `src` to node `dst`
    /// from scratch — the per-message reference computation the interned route
    /// table is checked against.
    pub fn build_path(&self, src: usize, dst: usize) -> Result<Itinerary> {
        if src == dst {
            return Err(SimError::InvalidConfiguration {
                reason: format!("message from node {src} to itself"),
            });
        }
        let mut hops = Vec::new();
        let mut channels = Vec::new();
        self.route_into(src, dst, &mut hops, &mut channels)?;
        let bottleneck = channels.iter().map(|&c| self.flit_time(c)).fold(0.0f64, f64::max);
        Ok(Itinerary {
            channels,
            bottleneck,
            src_cluster: self.neighborhood_of(src) as u32,
            dst_cluster: self.neighborhood_of(dst) as u32,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn fabric(k: usize, n: usize) -> CubeFabric {
        let torus = TorusSystem::new(k, n).unwrap();
        let traffic = TrafficConfig::uniform(32, 256.0, 1e-4).unwrap();
        CubeFabric::build(&torus, &traffic).unwrap()
    }

    #[test]
    fn channel_space_is_dense_and_disjoint() {
        let f = fabric(4, 2);
        // 16 nodes × 2 dims × 2 dirs × 2 VCs links + 32 injection/ejection.
        assert_eq!(f.num_channels(), 16 * 2 * 2 * 2 + 32);
        assert_eq!(f.channel_pool().len(), f.num_channels());
        let mut seen = HashSet::new();
        for node in 0..16 {
            assert!(seen.insert(f.injection(node)));
            assert!(seen.insert(f.ejection(node)));
            assert!(f.injection(node) >= f.link_channels);
        }
    }

    #[test]
    fn flit_times_follow_channel_kind() {
        let f = fabric(4, 2);
        // Paper constants for Lm = 256: t_cn = 0.276, t_cs = 0.522.
        assert!((f.t_node() - 0.276).abs() < 1e-12);
        assert!((f.t_link() - 0.522).abs() < 1e-12);
        let pool = f.channel_pool();
        assert!((pool.flit_time(0) - 0.522).abs() < 1e-12);
        assert!((pool.flit_time(f.injection(3)) - 0.276).abs() < 1e-12);
        assert!((f.flit_time(f.ejection(0)) - 0.276).abs() < 1e-12);
    }

    #[test]
    fn paths_match_topology_routes_hop_by_hop() {
        let f = fabric(4, 2);
        let cube = f.cube();
        for src in 0..cube.num_nodes() {
            for dst in 0..cube.num_nodes() {
                if src == dst {
                    assert!(f.build_path(src, dst).is_err());
                    continue;
                }
                let it = f.build_path(src, dst).unwrap();
                let hops = cube.route(NodeId::from_index(src), NodeId::from_index(dst)).unwrap();
                // injection + one channel per hop + ejection.
                assert_eq!(it.channels.len(), hops.len() + 2);
                assert_eq!(it.channels[0], f.injection(src));
                assert_eq!(*it.channels.last().unwrap(), f.ejection(dst));
                assert!((it.bottleneck - f.t_link()).abs() < 1e-12);
                // No channel repeats on a minimal dimension-order path.
                let unique: HashSet<_> = it.channels.iter().collect();
                assert_eq!(unique.len(), it.channels.len(), "{src}->{dst}");
            }
        }
    }

    #[test]
    fn wrap_crossing_routes_switch_virtual_channel() {
        // On a 4-ring, 3 -> 0 (+1 across the wrap) and 0 -> 3 (−1 across the
        // wrap) must use VC1; 0 -> 1 stays on VC0 of the same physical link
        // family.
        let f = fabric(4, 1);
        let forward_wrap = f.build_path(3, 0).unwrap();
        let backward_wrap = f.build_path(0, 3).unwrap();
        let plain = f.build_path(0, 1).unwrap();
        // Link ids are (node·dirs + dir)·vcs + vc: odd ids are VC1.
        assert_eq!(forward_wrap.channels[1] % 2, 1, "wrap hop must ride VC1");
        assert_eq!(backward_wrap.channels[1] % 2, 1, "wrap hop must ride VC1");
        assert_eq!(plain.channels[1] % 2, 0, "non-wrap hop must ride VC0");
        // A two-hop route crossing the wrap keeps VC1 after the crossing.
        let two_hop = f.build_path(3, 1).unwrap();
        assert_eq!(two_hop.channels.len(), 4);
        assert_eq!(two_hop.channels[1] % 2, 1);
        assert_eq!(two_hop.channels[2] % 2, 1);
    }

    #[test]
    fn hypercube_uses_single_channels() {
        let f = fabric(2, 3);
        assert_eq!(f.num_channels(), 8 * 3 + 16);
        let it = f.build_path(0, 7).unwrap();
        assert_eq!(it.channels.len(), 3 + 2);
        let unique: HashSet<_> = it.channels.iter().collect();
        assert_eq!(unique.len(), it.channels.len());
    }

    #[test]
    fn directed_link_channels_match_hop_channels() {
        let f = fabric(4, 2);
        // The +1 hop out of node 5 in dimension 0 lands on node 6; its channel
        // set must be exactly the VCs the router would use for that hop.
        let hop = CubeHop { dimension: 0, direction: 1, node: NodeId::from_index(6) };
        let expected: Vec<_> =
            (0..f.virtual_channels()).map(|vc| f.link_channel(5, &hop, vc)).collect();
        assert_eq!(f.directed_link_channels(5, 0, true), expected);
        let back = CubeHop { dimension: 0, direction: -1, node: NodeId::from_index(5) };
        let expected: Vec<_> =
            (0..f.virtual_channels()).map(|vc| f.link_channel(6, &back, vc)).collect();
        assert_eq!(f.directed_link_channels(6, 0, false), expected);
        // k = 2: both directions collapse onto the single channel.
        let h = fabric(2, 3);
        assert_eq!(h.directed_link_channels(0, 1, true), h.directed_link_channels(0, 1, false));
    }

    #[test]
    fn ring_neighbors_wrap_per_dimension() {
        let f = fabric(4, 2);
        assert_eq!(f.ring_neighbor(5, 0, true), 6);
        assert_eq!(f.ring_neighbor(5, 0, false), 4);
        assert_eq!(f.ring_neighbor(3, 0, true), 0, "dimension-0 wrap");
        assert_eq!(f.ring_neighbor(5, 1, true), 9);
        assert_eq!(f.ring_neighbor(1, 1, false), 13, "dimension-1 wrap");
        let h = fabric(2, 3);
        assert_eq!(h.ring_neighbor(0, 2, true), 4);
        assert_eq!(h.ring_neighbor(0, 2, false), 4, "k = 2 directions coincide");
    }

    #[test]
    fn switch_channels_cover_all_incident_links() {
        let f = fabric(4, 2);
        let channels = f.switch_channels(5);
        // injection + ejection + (2 dims × 2 dirs × 2 VCs) outgoing + the same
        // incoming from the four neighbours.
        assert_eq!(channels.len(), 2 + 8 + 8);
        assert!(channels.contains(&f.injection(5)));
        assert!(channels.contains(&f.ejection(5)));
        for dim in 0..2 {
            for positive in [true, false] {
                for ch in f.directed_link_channels(5, dim, positive) {
                    assert!(channels.contains(&ch), "outgoing dim {dim}");
                }
                let nb = f.ring_neighbor(5, dim, positive);
                for ch in f.directed_link_channels(nb, dim, !positive) {
                    assert!(channels.contains(&ch), "incoming dim {dim}");
                }
            }
        }
        // Sorted and unique.
        let mut sorted = channels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, channels);
    }

    fn adaptive_fabric(k: usize, n: usize, adaptive_vcs: u8) -> CubeFabric {
        let torus = TorusSystem::new(k, n).unwrap();
        let traffic = TrafficConfig::uniform(32, 256.0, 1e-4).unwrap();
        CubeFabric::build_with(&torus, &traffic, adaptive_vcs).unwrap()
    }

    #[test]
    #[allow(clippy::identity_op)] // channel-count factors spelled out per leg
    fn adaptive_fabric_layers_vcs_above_the_escape_class() {
        let det = fabric(4, 2);
        let ad = adaptive_fabric(4, 2, 2);
        assert_eq!(det.adaptive_vcs(), 0);
        assert_eq!((ad.escape_vcs(), ad.adaptive_vcs(), ad.virtual_channels()), (2, 2, 4));
        assert_eq!(ad.num_channels(), 16 * 2 * 2 * 4 + 32);

        let hop = CubeHop { dimension: 0, direction: 1, node: NodeId::from_index(1) };
        assert!(det.adaptive_link_channels(0, &hop).is_empty());
        let range = ad.adaptive_link_channels(0, &hop);
        assert_eq!(range.len(), 2);
        assert_eq!(range.start, ad.link_channel(0, &hop, 2));

        // Escape selection: VC0 before the dateline, VC1 on the wrap hop and
        // for any message that already wrapped this dimension.
        assert_eq!(ad.escape_channel(0, &hop, false), ad.link_channel(0, &hop, 0));
        assert_eq!(ad.escape_channel(0, &hop, true), ad.link_channel(0, &hop, 1));
        let wrap_hop = CubeHop { dimension: 0, direction: 1, node: NodeId::from_index(0) };
        assert!(ad.hop_wraps(3, &wrap_hop));
        assert!(!ad.hop_wraps(1, &hop));
        assert_eq!(ad.escape_channel(3, &wrap_hop, false), ad.link_channel(3, &wrap_hop, 1));

        // Hypercube: single-VC escape class, adaptive layered above it.
        let h = adaptive_fabric(2, 3, 1);
        assert_eq!((h.escape_vcs(), h.adaptive_vcs()), (1, 1));
        assert_eq!(h.num_channels(), 8 * 3 * 1 * 2 + 16);
    }

    #[test]
    fn deterministic_routes_on_adaptive_fabrics_stay_in_the_escape_class() {
        let ad = adaptive_fabric(4, 2, 2);
        let vcs = ad.virtual_channels();
        for src in 0..16 {
            for dst in 0..16 {
                if src == dst {
                    continue;
                }
                let it = ad.build_path(src, dst).unwrap();
                for &ch in &it.channels {
                    if ch < ad.link_channels {
                        assert!(ch % vcs < ad.escape_vcs(), "{src}->{dst} left the escape class");
                    }
                }
            }
        }
    }

    #[test]
    fn neighborhoods_are_dimension0_subrings() {
        let f = fabric(4, 2);
        assert_eq!(f.neighborhood_of(0), 0);
        assert_eq!(f.neighborhood_of(3), 0);
        assert_eq!(f.neighborhood_of(4), 1);
        let intra = f.build_path(0, 3).unwrap();
        assert_eq!(intra.src_cluster, intra.dst_cluster);
        let inter = f.build_path(0, 4).unwrap();
        assert_ne!(inter.src_cluster, inter.dst_cluster);
    }
}
