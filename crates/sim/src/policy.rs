//! Routing policies: how a message's itinerary is chosen.
//!
//! The engine supports three policies:
//!
//! * [`RoutingPolicy::Deterministic`] — the PR 1/3 contract: every `(src, dst)`
//!   pair resolves to one interned arena slice (dimension-order + dateline VCs
//!   on the torus, the NCA route on the tree). Bit-identical to all previous
//!   releases and allocation-free after a pair's first lookup.
//! * [`RoutingPolicy::AdaptiveTorus`] — Duato-style minimal-adaptive routing on
//!   the k-ary n-cube. Each directed link carries `adaptive_vcs` extra virtual
//!   channels with no routing restriction; the existing Dally–Seitz dateline
//!   VCs become the *escape class*. At every hop the header may take any free
//!   adaptive VC on any minimal next-hop; when all adaptive candidates are
//!   busy it falls back to (and may wait on) the escape channel, whose
//!   dimension-order + dateline discipline keeps the network deadlock-free.
//! * [`RoutingPolicy::RandomizedUpDown`] — randomized legal up\*/down\* path
//!   selection on the m-port n-tree fabric. The up-port choices of the ICN1 /
//!   ECN1 ascents (and the ICN2 crossing) are sampled uniformly per message
//!   instead of being forced by the destination digits, spreading load across
//!   the tree's redundant ascent paths.
//!
//! Adaptive decisions draw from a dedicated RNG stream seeded independently of
//! the traffic stream, so enabling a policy never perturbs arrival times or
//! destination draws — deterministic-mode digests are unchanged by
//! construction, and fixed-seed adaptive runs are themselves reproducible.

use crate::{Result, SimError};

/// Default number of unrestricted adaptive VCs per directed torus link.
pub const DEFAULT_ADAPTIVE_VCS: u8 = 1;

/// How message itineraries are chosen (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingPolicy {
    /// One interned deterministic itinerary per `(src, dst)` pair.
    #[default]
    Deterministic,
    /// Minimal-adaptive torus routing with Duato escape channels.
    AdaptiveTorus {
        /// Unrestricted adaptive VCs added to every directed link (1..=4).
        adaptive_vcs: u8,
    },
    /// Randomized legal up*/down* path selection on the tree.
    RandomizedUpDown,
}

impl RoutingPolicy {
    /// Upper bound on `adaptive_vcs`: more VCs than this would only dilute the
    /// per-VC bandwidth share without adding routing freedom on minimal paths.
    pub const MAX_ADAPTIVE_VCS: u8 = 4;

    /// `true` for the deterministic (interned-route) policy.
    #[inline]
    pub fn is_deterministic(self) -> bool {
        matches!(self, RoutingPolicy::Deterministic)
    }

    /// The spec-facing policy name (`"routing": {"policy": ...}`).
    pub fn spec_name(self) -> &'static str {
        match self {
            RoutingPolicy::Deterministic => "deterministic",
            RoutingPolicy::AdaptiveTorus { .. } => "adaptive_torus",
            RoutingPolicy::RandomizedUpDown => "randomized_updown",
        }
    }

    /// Human-readable description used by summaries and report headers.
    pub fn describe(self) -> String {
        match self {
            RoutingPolicy::Deterministic => "deterministic".to_string(),
            RoutingPolicy::AdaptiveTorus { adaptive_vcs } => {
                format!("adaptive torus (escape + {adaptive_vcs} adaptive vc)")
            }
            RoutingPolicy::RandomizedUpDown => "randomized up*/down*".to_string(),
        }
    }

    /// Validates the policy's own parameters (fabric compatibility is checked
    /// where the policy meets a concrete fabric).
    pub fn validate(self) -> Result<()> {
        if let RoutingPolicy::AdaptiveTorus { adaptive_vcs } = self {
            if adaptive_vcs == 0 || adaptive_vcs > Self::MAX_ADAPTIVE_VCS {
                return Err(SimError::InvalidConfiguration {
                    reason: format!(
                        "adaptive_vcs must be in 1..={}, got {adaptive_vcs}",
                        Self::MAX_ADAPTIVE_VCS
                    ),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_deterministic() {
        assert!(RoutingPolicy::default().is_deterministic());
        assert!(!RoutingPolicy::AdaptiveTorus { adaptive_vcs: 1 }.is_deterministic());
        assert!(!RoutingPolicy::RandomizedUpDown.is_deterministic());
    }

    #[test]
    fn spec_names_are_stable() {
        assert_eq!(RoutingPolicy::Deterministic.spec_name(), "deterministic");
        assert_eq!(RoutingPolicy::AdaptiveTorus { adaptive_vcs: 2 }.spec_name(), "adaptive_torus");
        assert_eq!(RoutingPolicy::RandomizedUpDown.spec_name(), "randomized_updown");
    }

    #[test]
    fn adaptive_vc_counts_are_bounded() {
        assert!(RoutingPolicy::AdaptiveTorus { adaptive_vcs: 0 }.validate().is_err());
        assert!(RoutingPolicy::AdaptiveTorus { adaptive_vcs: 1 }.validate().is_ok());
        assert!(RoutingPolicy::AdaptiveTorus { adaptive_vcs: 4 }.validate().is_ok());
        assert!(RoutingPolicy::AdaptiveTorus { adaptive_vcs: 5 }.validate().is_err());
        assert!(RoutingPolicy::Deterministic.validate().is_ok());
        assert!(RoutingPolicy::RandomizedUpDown.validate().is_ok());
    }
}
