//! # mcnet-sim
//!
//! A flit-level-granularity **discrete-event wormhole simulator** for heterogeneous
//! multi-cluster systems — the validation vehicle of Javadi et al. (ICPP Workshops
//! 2006, Section 4). The paper validates its analytical latency model against "a
//! simulator that uses the same assumptions as the analysis"; that simulator is not
//! published, so this crate rebuilds it from the stated assumptions.
//!
//! ## What is simulated
//!
//! The full system of the paper's Fig. 1–2 is materialised: per cluster an ICN1 and an
//! ECN1 m-port n-tree (explicit switches and unidirectional channels, from
//! `mcnet-topology`), a global ICN2 m-port n_c-tree whose node slots host the per-cluster
//! concentrator/dispatcher units, Poisson message generation at every node, uniform (or
//! optionally hot-spot / cluster-local) destination selection, deterministic NCA
//! routing and wormhole flow control with single-flit channel buffers.
//!
//! ## Fabric backends
//!
//! The engine itself is network-agnostic: everything it needs from the fabric —
//! a dense global channel-id space with per-flit times, itinerary construction
//! (consumed through the interning [`routes::RouteTable`] arena) and a coarse
//! node partition for the intra/inter latency split — is captured by
//! [`backend::FabricBackend`]. Two backends implement that surface:
//!
//! * the **tree backend** ([`fabric::Fabric`]) — the paper's multi-cluster
//!   m-port n-tree fabric described above, and
//! * the **cube backend** ([`cube::CubeFabric`]) — a k-ary n-cube (torus) with
//!   dimension-order routing and Dally–Seitz dateline virtual channels, the
//!   direct-network family of the paper's analytical lineage (its refs [6]–[9]).
//!
//! Both backends are driven through one declarative entry point: a
//! [`scenario::Scenario`] composes a fabric ([`scenario::Fabric::Tree`] or
//! [`scenario::Fabric::Torus`]), a traffic configuration, a measurement
//! protocol and a replication plan, and exposes `run()`, `replicate(n)` and
//! `sweep(&rates)` — plus the **analytical evaluation mode**
//! [`scenario::Scenario::evaluate`], which sends the same fabric and traffic
//! point through `mcnet-model`'s matching `ModelBackend` instead of the
//! discrete-event engine, so one scenario (or serialized spec) drives model
//! *or* simulation. Scenarios are serializable as plain-data
//! [`scenario::ScenarioSpec`] JSON files (see `specs/` at the workspace root).
//! The historical per-backend `runner::run_*` functions are gone; the scenario
//! layer's outputs are pinned bit-for-bit against frozen golden digests in
//! `tests/scenario_api.rs` instead.
//!
//! ## Routing policies
//!
//! Itinerary selection is governed by [`policy::RoutingPolicy`]: the default
//! deterministic tables (NCA tree routing / dimension-order torus routing),
//! the minimal-adaptive torus policy with a Duato-style dateline escape class
//! ([`policy::RoutingPolicy::AdaptiveTorus`]), or randomized legal up\*/down\*
//! tree paths ([`policy::RoutingPolicy::RandomizedUpDown`]). Policies thread
//! through the builder (`ScenarioBuilder::routing`) and the spec's `"routing"`
//! key; deterministic runs are bit-identical to the pre-policy engine.
//!
//! ## Wormhole model
//!
//! Messages are simulated at *worm* granularity: the header acquires the channels of
//! its path one by one (waiting in FIFO order when a channel is held by another worm,
//! while keeping every channel it has already acquired — the tree-saturation behaviour
//! that produces latency blow-up near saturation), and once the header is delivered the
//! remaining `M − 1` flits drain at the slowest channel rate of the path, after which
//! all held channels are released. The injection channel of a node therefore stays busy
//! for the entire network latency of the message, which makes the node's source queue
//! exactly the M/G/1 station the analytical model assumes.
//!
//! Inter-cluster messages traverse three wormhole segments (ECN1 ascent, ICN2, ECN1
//! descent) separated by the concentrator and dispatcher buffers, each modelled as a
//! single-server FIFO whose service time is one message transfer (`M·t_cs`), with
//! cut-through forwarding (the message proceeds as soon as it reaches the head of the
//! queue, mirroring the paper's Eq. 33 which charges only the *waiting* time).
//!
//! ## Methodology
//!
//! [`SimConfig`] reproduces the paper's measurement protocol: a warm-up phase
//! (messages not counted), a measurement phase and a drain phase, with totals of
//! 10,000 / 100,000 / 10,000 messages in the paper. Parallel replications with
//! independent seeds run on worker threads via [`scenario::Scenario::replicate`].
//!
//! ```
//! use mcnet_sim::{Scenario, SimConfig};
//! use mcnet_system::{organizations, TrafficConfig};
//!
//! let report = Scenario::builder()
//!     .tree(organizations::small_test_org())
//!     .traffic(TrafficConfig::uniform(8, 256.0, 1.0e-3).unwrap())
//!     .config(SimConfig::quick(42))
//!     .build()
//!     .unwrap()
//!     .run()
//!     .unwrap();
//! assert!(report.mean_latency > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arrivals;
pub mod backend;
pub mod channels;
pub mod concentrator;
pub mod cube;
pub mod engine;
pub mod event;
pub mod fabric;
pub mod fault;
pub mod json;
pub mod message;
pub mod policy;
pub mod routes;
pub mod runner;
pub mod scenario;
pub mod stats;
pub mod traffic;
pub mod traffic_source;

pub use backend::FabricBackend;
pub use fault::{BridgeUnit, FaultAction, FaultEvent, FaultPlan, FaultTarget, RingDir};
pub use policy::RoutingPolicy;
pub use runner::{ReplicatedReport, SimConfig, SimReport};
pub use scenario::{Fabric, Protocol, Scenario, ScenarioBuilder, ScenarioOutcome, ScenarioSpec};
pub use traffic_source::{TrafficSource, TrafficSourceSpec};

/// Errors produced while building or running a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The system or traffic description was invalid.
    InvalidConfiguration {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// The event budget was exhausted before every generated message was delivered
    /// (the system is so far past saturation that finishing would take unreasonably
    /// long). The partial statistics are returned alongside.
    EventBudgetExhausted {
        /// Number of events processed before giving up.
        events: u64,
        /// Number of messages delivered before giving up.
        delivered: u64,
    },
    /// A serialized scenario spec could not be parsed or did not describe a
    /// valid scenario (unknown fabric kind, malformed JSON, missing fields,
    /// an empty or non-finite sweep rate grid…).
    InvalidSpec {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// The analytical model ([`Scenario::evaluate`]) declared saturation at the
    /// requested load: the steady-state latency does not exist there. The
    /// analytical counterpart of [`SimError::EventBudgetExhausted`].
    ModelSaturated {
        /// Which model component saturated.
        component: String,
        /// The utilisation that triggered the error.
        utilization: f64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InvalidConfiguration { reason } => {
                write!(f, "invalid simulation configuration: {reason}")
            }
            SimError::EventBudgetExhausted { events, delivered } => write!(
                f,
                "event budget exhausted after {events} events ({delivered} messages delivered)"
            ),
            SimError::InvalidSpec { reason } => {
                write!(f, "invalid scenario spec: {reason}")
            }
            SimError::ModelSaturated { component, utilization } => {
                write!(f, "analytical model saturated: {component} at utilisation {utilization:.3}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SimError>;

impl From<mcnet_system::SystemError> for SimError {
    fn from(e: mcnet_system::SystemError) -> Self {
        SimError::InvalidConfiguration { reason: e.to_string() }
    }
}

impl From<mcnet_topology::TopologyError> for SimError {
    fn from(e: mcnet_topology::TopologyError) -> Self {
        SimError::InvalidConfiguration { reason: e.to_string() }
    }
}

impl From<mcnet_model::ModelError> for SimError {
    fn from(e: mcnet_model::ModelError) -> Self {
        match e {
            mcnet_model::ModelError::Saturated { component, utilization, .. } => {
                SimError::ModelSaturated { component: component.to_string(), utilization }
            }
            other => SimError::InvalidConfiguration { reason: other.to_string() },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = SimError::InvalidConfiguration { reason: "nope".into() };
        assert!(e.to_string().contains("nope"));
        let e = SimError::EventBudgetExhausted { events: 10, delivered: 3 };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("3"));
        let e = SimError::InvalidSpec { reason: "bad kind".into() };
        assert!(e.to_string().contains("bad kind"));
        let e = SimError::ModelSaturated { component: "network channel".into(), utilization: 1.2 };
        assert!(e.to_string().contains("network channel"));
        assert!(e.to_string().contains("1.2"));
    }

    #[test]
    fn error_conversions() {
        let e: SimError = mcnet_system::SystemError::TooFewClusters { clusters: 1 }.into();
        assert!(matches!(e, SimError::InvalidConfiguration { .. }));
        let e: SimError = mcnet_topology::TopologyError::InvalidLevelCount { n: 0 }.into();
        assert!(matches!(e, SimError::InvalidConfiguration { .. }));
        // Model saturation keeps its typed identity; other model errors fold
        // into the configuration bucket.
        let e: SimError = mcnet_model::ModelError::Saturated {
            component: mcnet_model::SaturatedComponent::Channel,
            utilization: 1.5,
            cluster: None,
        }
        .into();
        assert!(matches!(e, SimError::ModelSaturated { .. }));
        let e: SimError =
            mcnet_model::ModelError::InvalidConfiguration { reason: "nope".into() }.into();
        assert!(matches!(e, SimError::InvalidConfiguration { .. }));
    }
}
