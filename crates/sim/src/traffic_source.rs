//! Pluggable traffic sources: bursty MMPP/ON-OFF arrivals, per-node
//! heterogeneity and trace replay behind the Poisson default.
//!
//! The paper's analysis (assumptions 1–2) fixes stationary Poisson arrivals
//! with a static destination mix; the engine historically hard-wired that
//! process. This module generalises message generation behind the
//! [`TrafficSource`] trait — the next arrival *time* of a node plus the
//! destination of the message it emits — with four implementations:
//!
//! * [`Poisson`](crate::traffic::Poisson) — the paper's process, extracted
//!   unchanged. Runs through the trait are bit-identical to the legacy inline
//!   sampler (pinned by test and by the frozen golden digests).
//! * [`OnOff`] — a two-state Markov-modulated Poisson process (an interrupted
//!   Poisson process): each node alternates between exponentially distributed
//!   ON bursts, during which it generates at `rate / duty`, and silent OFF
//!   gaps. The long-run mean rate equals the configured rate, so analytical
//!   comparisons stay anchored; the squared coefficient of variation of the
//!   inter-arrival times (the *burstiness index*) grows as the duty cycle
//!   shrinks: `c² = 1 + 2·(rate/duty)·(1 − duty)²·mean_on`.
//! * [`HeterogeneousRates`] — per-node rate multipliers over any inner source,
//!   by dilating the inner source's per-node clock.
//! * [`TraceReplay`] — replays a sorted `(time, src, dst[, class])` record
//!   stream from a JSON or CSV trace file (or inline spec records), with
//!   typed [`SimError::InvalidSpec`] rejection of malformed input.
//!
//! Sources are described declaratively by the plain-data [`TrafficSourceSpec`]
//! (the `"source"` key inside a scenario spec's `"traffic"` object) and built
//! against a node partition at simulation-construction time. Every source
//! draws from the engine's single traffic RNG stream in a deterministic
//! per-node order, so fixed-seed runs stay bit-reproducible — and the Poisson
//! spec consumes exactly the legacy draw sequence.

use std::collections::BTreeMap;

use crate::json::Json;
use crate::scenario::{get_f64, get_str, reject_unknown_keys, spec_error};
use crate::traffic::Poisson;
use crate::{Result, SimError};
use mcnet_system::TrafficConfig;
use rand::rngs::SmallRng;
use rand::Rng;

/// One node-indexed arrival process: the engine asks for the next arrival time
/// of a node (absolute simulation time) and, when that arrival fires, for the
/// destination of the generated message.
///
/// Contract:
/// * `next_arrival(rng, node, prev)` is called once per generated message with
///   `prev` = the node's previous arrival time (`0.0` when priming a fresh
///   run). The returned time must be `>= prev` — the engine debug-asserts
///   monotonicity — and `None` retires the node (no further messages; used by
///   finite traces).
/// * `destination(rng, src)` is called exactly once per arrival, immediately
///   after the arrival fires and **before** the node's next `next_arrival`
///   re-arm, mirroring the legacy draw order.
/// * `rebind` re-validates and adopts a new traffic configuration over the
///   same node partition and rewinds all per-node state to its
///   post-construction value, so an engine [`reset`](crate::engine::Simulation::reset)
///   is bit-identical to a fresh build.
pub trait TrafficSource: std::fmt::Debug + Send {
    /// Absolute time of `node`'s next arrival, or `None` if the node
    /// generates no further messages.
    fn next_arrival(&mut self, rng: &mut SmallRng, node: usize, prev: f64) -> Option<f64>;

    /// Destination of the message generated at `src`'s current arrival.
    fn destination(&mut self, rng: &mut SmallRng, src: usize) -> usize;

    /// The long-run mean per-node generation rate (messages per time unit).
    fn mean_rate(&self) -> f64;

    /// Total number of messages this source can ever generate, if finite
    /// (trace replay); `None` for open-ended stochastic sources.
    fn message_limit(&self) -> Option<u64> {
        None
    }

    /// Re-validates and adopts a new traffic configuration over the same node
    /// partition, rewinding per-node state for a fresh run.
    fn rebind(&mut self, traffic: &TrafficConfig) -> Result<()>;
}

/// Expected messages per ON burst when an [`OnOff`] spec omits `mean_on`:
/// the default ON dwell is `DEFAULT_BURST_MESSAGES · duty / rate`, which keeps
/// the burstiness index `c² = 1 + 2·K·(1 − duty)²` independent of the rate
/// axis — a campaign `burstiness` sweep changes only the duty cycle.
pub const DEFAULT_BURST_MESSAGES: f64 = 20.0;

/// Exponential draw with the same zero-endpoint guard as
/// [`Poisson::sample_interarrival`]: strictly positive, finite.
fn exp_draw(rng: &mut SmallRng, rate: f64) -> f64 {
    let u: f64 = rng.gen::<f64>();
    let v = (1.0 - u).min(1.0 - f64::EPSILON / 2.0);
    -v.ln() / rate
}

// ---- Poisson (extracted legacy process) -----------------------------------------

impl TrafficSource for Poisson {
    fn next_arrival(&mut self, rng: &mut SmallRng, _node: usize, prev: f64) -> Option<f64> {
        // Exactly the legacy draw: one exponential inter-arrival per call,
        // added to the previous arrival (0.0 at priming).
        Some(prev + self.sample_interarrival(rng))
    }

    fn destination(&mut self, rng: &mut SmallRng, src: usize) -> usize {
        self.sample_destination(rng, src)
    }

    fn mean_rate(&self) -> f64 {
        self.generation_rate()
    }

    fn rebind(&mut self, traffic: &TrafficConfig) -> Result<()> {
        Poisson::rebind(self, traffic)
    }
}

// ---- ON-OFF (2-state MMPP / interrupted Poisson) --------------------------------

/// Per-node modulation state of an [`OnOff`] source.
#[derive(Debug, Clone, Copy, Default)]
struct BurstState {
    /// Whether the stationary initial state has been drawn yet.
    primed: bool,
    /// Currently in the ON (generating) state.
    on: bool,
    /// Absolute time at which the current dwell ends.
    until: f64,
}

/// Two-state Markov-modulated Poisson source: each node independently
/// alternates between exponential ON dwells (mean `mean_on`), during which it
/// generates at `rate / duty`, and exponential OFF dwells sized so the
/// long-run ON fraction equals `duty` — the long-run mean rate is therefore
/// exactly the configured `generation_rate`, whatever the duty cycle.
///
/// Destination sampling is delegated to the embedded [`Poisson`] source, so
/// the pattern machinery (uniform / hot-spot / cluster-local) carries over
/// unchanged.
#[derive(Debug)]
pub struct OnOff {
    base: Poisson,
    duty: f64,
    /// `mean_on` as specified, or `None` for the rate-coupled default.
    spec_mean_on: Option<f64>,
    mean_on: f64,
    mean_off: f64,
    lambda_on: f64,
    states: Vec<BurstState>,
}

impl OnOff {
    /// Builds an ON-OFF source over a node partition. `duty` is the long-run
    /// ON fraction in `(0, 1)`; `mean_on` the mean ON dwell (default:
    /// [`DEFAULT_BURST_MESSAGES`] expected messages per burst).
    pub fn new(
        traffic: &TrafficConfig,
        total_nodes: usize,
        cluster_ranges: Vec<(usize, usize)>,
        duty: f64,
        spec_mean_on: Option<f64>,
    ) -> Result<Self> {
        check_on_off(duty, spec_mean_on)?;
        let base = Poisson::from_parts(traffic, total_nodes, cluster_ranges)?;
        let mut source = OnOff {
            base,
            duty,
            spec_mean_on,
            mean_on: 0.0,
            mean_off: 0.0,
            lambda_on: 0.0,
            states: vec![BurstState::default(); total_nodes],
        };
        source.derive();
        Ok(source)
    }

    /// Recomputes the dwell parameters from the base rate and duty cycle.
    fn derive(&mut self) {
        let rate = self.base.generation_rate();
        self.mean_on = self.spec_mean_on.unwrap_or(DEFAULT_BURST_MESSAGES * self.duty / rate);
        self.mean_off = self.mean_on * (1.0 - self.duty) / self.duty;
        self.lambda_on = rate / self.duty;
    }

    /// The burstiness index (squared coefficient of variation of the
    /// inter-arrival times) of this source's interrupted Poisson process.
    pub fn burstiness(&self) -> f64 {
        1.0 + 2.0 * self.lambda_on * (1.0 - self.duty).powi(2) * self.mean_on
    }
}

impl TrafficSource for OnOff {
    fn next_arrival(&mut self, rng: &mut SmallRng, node: usize, prev: f64) -> Option<f64> {
        let state = &mut self.states[node];
        let mut t = prev;
        if !state.primed {
            // Stationary start: ON with probability `duty`, then a full
            // exponential dwell (memorylessness makes the residual dwell
            // exponential with the same mean).
            state.primed = true;
            state.on = rng.gen::<f64>() < self.duty;
            let mean = if state.on { self.mean_on } else { self.mean_off };
            state.until = t + exp_draw(rng, 1.0 / mean);
        }
        loop {
            if state.on {
                let dt = exp_draw(rng, self.lambda_on);
                if t + dt <= state.until {
                    return Some(t + dt);
                }
                // No arrival before the burst ends: discard the overshoot
                // (memorylessness again) and dwell OFF.
                t = state.until;
                state.on = false;
                state.until = t + exp_draw(rng, 1.0 / self.mean_off);
            } else {
                t = state.until;
                state.on = true;
                state.until = t + exp_draw(rng, 1.0 / self.mean_on);
            }
        }
    }

    fn destination(&mut self, rng: &mut SmallRng, src: usize) -> usize {
        self.base.sample_destination(rng, src)
    }

    fn mean_rate(&self) -> f64 {
        self.base.generation_rate()
    }

    fn rebind(&mut self, traffic: &TrafficConfig) -> Result<()> {
        Poisson::rebind(&mut self.base, traffic)?;
        self.derive();
        self.states.iter_mut().for_each(|s| *s = BurstState::default());
        Ok(())
    }
}

fn check_on_off(duty: f64, mean_on: Option<f64>) -> Result<()> {
    if !(duty.is_finite() && duty > 0.0 && duty < 1.0) {
        return Err(spec_error(format!(
            "traffic.source: on_off duty must lie strictly in (0, 1), got {duty} (use the plain \
             poisson source for duty 1)"
        )));
    }
    if let Some(m) = mean_on {
        if !(m.is_finite() && m > 0.0) {
            return Err(spec_error(format!(
                "traffic.source: on_off mean_on must be positive and finite, got {m}"
            )));
        }
    }
    Ok(())
}

// ---- Per-node heterogeneous rates -----------------------------------------------

/// Wraps any inner source with per-node rate multipliers by dilating the inner
/// source's per-node clock: a node with multiplier `m` sees the inner process
/// sped up by `m` (inter-arrival gaps divided by `m`), so its long-run rate is
/// `m ·` the inner rate while burst structure and destination sampling carry
/// over unchanged.
#[derive(Debug)]
pub struct HeterogeneousRates {
    inner: Box<dyn TrafficSource>,
    multipliers: Vec<f64>,
    mean_multiplier: f64,
    /// Per-node previous arrival on the *inner* (undilated) clock.
    inner_prev: Vec<f64>,
}

impl HeterogeneousRates {
    /// Wraps `inner` with one positive finite multiplier per node.
    pub fn new(
        inner: Box<dyn TrafficSource>,
        multipliers: Vec<f64>,
        total_nodes: usize,
    ) -> Result<Self> {
        check_multipliers(&multipliers)?;
        if multipliers.len() != total_nodes {
            return Err(spec_error(format!(
                "traffic.source: heterogeneous needs one multiplier per node ({} nodes, got {})",
                total_nodes,
                multipliers.len()
            )));
        }
        let mean_multiplier = multipliers.iter().sum::<f64>() / multipliers.len() as f64;
        let inner_prev = vec![0.0; total_nodes];
        Ok(HeterogeneousRates { inner, multipliers, mean_multiplier, inner_prev })
    }
}

impl TrafficSource for HeterogeneousRates {
    fn next_arrival(&mut self, rng: &mut SmallRng, node: usize, prev: f64) -> Option<f64> {
        let inner_t = self.inner.next_arrival(rng, node, self.inner_prev[node])?;
        let gap = inner_t - self.inner_prev[node];
        self.inner_prev[node] = inner_t;
        Some(prev + gap / self.multipliers[node])
    }

    fn destination(&mut self, rng: &mut SmallRng, src: usize) -> usize {
        self.inner.destination(rng, src)
    }

    fn mean_rate(&self) -> f64 {
        self.inner.mean_rate() * self.mean_multiplier
    }

    fn rebind(&mut self, traffic: &TrafficConfig) -> Result<()> {
        self.inner.rebind(traffic)?;
        self.inner_prev.iter_mut().for_each(|t| *t = 0.0);
        Ok(())
    }
}

fn check_multipliers(multipliers: &[f64]) -> Result<()> {
    if multipliers.is_empty() {
        return Err(spec_error("traffic.source: heterogeneous multipliers must be non-empty"));
    }
    for (i, &m) in multipliers.iter().enumerate() {
        if !(m.is_finite() && m > 0.0) {
            return Err(spec_error(format!(
                "traffic.source: heterogeneous multiplier {i} must be positive and finite, got {m}"
            )));
        }
    }
    Ok(())
}

// ---- Trace replay ---------------------------------------------------------------

/// One validated trace record: an arrival at `time` generating a message
/// `src → dst`.
#[derive(Debug, Clone, Copy)]
struct TraceRecord {
    time: f64,
    dst: u32,
}

/// A raw record as parsed from a trace file or inline spec records, before
/// binding against a node partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct RawRecord {
    pub(crate) time: f64,
    pub(crate) src: u64,
    pub(crate) dst: u64,
    /// Declared message class, if any: `true` = inter-cluster.
    pub(crate) class: Option<bool>,
}

/// Replays a finite, globally time-sorted trace of `(time, src, dst)` records.
/// Deterministic by construction: no RNG draws at all — arrival times and
/// destinations come straight from the records, and the per-run message count
/// equals the record count (the engine caps its generation target at the
/// source's [`message_limit`](TrafficSource::message_limit)).
#[derive(Debug)]
pub struct TraceReplay {
    /// Per-source-node record queues, each sorted by time (inherited from the
    /// global sort).
    per_node: Vec<Vec<TraceRecord>>,
    cursors: Vec<usize>,
    total_records: u64,
    per_node_rate: f64,
}

impl TraceReplay {
    /// Binds validated raw records to a node partition: node ids must be in
    /// range, `class` declarations (when present) must match the partition.
    fn bind(
        records: &[RawRecord],
        total_nodes: usize,
        cluster_ranges: &[(usize, usize)],
    ) -> Result<Self> {
        let mut per_node: Vec<Vec<TraceRecord>> = vec![Vec::new(); total_nodes];
        for (i, rec) in records.iter().enumerate() {
            if rec.src >= total_nodes as u64 || rec.dst >= total_nodes as u64 {
                return Err(spec_error(format!(
                    "traffic.source: trace record {i} names node {} outside the {total_nodes}-node \
                     system",
                    rec.src.max(rec.dst)
                )));
            }
            if let Some(inter) = rec.class {
                let same = range_of(cluster_ranges, rec.src as usize)
                    == range_of(cluster_ranges, rec.dst as usize);
                if inter == same {
                    return Err(spec_error(format!(
                        "traffic.source: trace record {i} declares class {:?} but nodes {} and {} \
                         are {}in the same partition",
                        if inter { "inter" } else { "intra" },
                        rec.src,
                        rec.dst,
                        if same { "" } else { "not " }
                    )));
                }
            }
            per_node[rec.src as usize].push(TraceRecord { time: rec.time, dst: rec.dst as u32 });
        }
        let span = records[records.len() - 1].time - records[0].time;
        let per_node_rate =
            if span > 0.0 { (records.len() - 1) as f64 / span / total_nodes as f64 } else { 0.0 };
        Ok(TraceReplay {
            per_node,
            cursors: vec![0; total_nodes],
            total_records: records.len() as u64,
            per_node_rate,
        })
    }
}

impl TrafficSource for TraceReplay {
    fn next_arrival(&mut self, _rng: &mut SmallRng, node: usize, _prev: f64) -> Option<f64> {
        let rec = self.per_node[node].get(self.cursors[node])?;
        self.cursors[node] += 1;
        Some(rec.time)
    }

    fn destination(&mut self, _rng: &mut SmallRng, src: usize) -> usize {
        // The cursor was advanced by the `next_arrival` that scheduled this
        // arrival, so the fired record sits one slot back.
        let cursor = self.cursors[src];
        debug_assert!(cursor > 0, "destination queried before any arrival at node {src}");
        self.per_node[src][cursor - 1].dst as usize
    }

    fn mean_rate(&self) -> f64 {
        self.per_node_rate
    }

    fn message_limit(&self) -> Option<u64> {
        Some(self.total_records)
    }

    fn rebind(&mut self, traffic: &TrafficConfig) -> Result<()> {
        // The records are immutable; a reset only rewinds the cursors. The
        // configured generation rate is ignored by replay (timing comes from
        // the trace), but the geometry must still be a valid configuration.
        traffic.validate().map_err(SimError::from)?;
        self.cursors.iter_mut().for_each(|c| *c = 0);
        Ok(())
    }
}

/// The partition range a node belongs to (ranges sorted and contiguous).
fn range_of(ranges: &[(usize, usize)], node: usize) -> (usize, usize) {
    let idx = ranges.partition_point(|&(_, e)| e <= node);
    ranges[idx]
}

/// Validates the global ordering invariants of a parsed trace: at least two
/// records, strictly positive finite times, strictly increasing timestamps
/// (duplicates are rejected — simultaneous arrivals would create event ties
/// the engine must not have to break), and no self-addressed messages.
fn check_trace(records: &[RawRecord], origin: &str) -> Result<()> {
    if records.len() < 2 {
        return Err(spec_error(format!(
            "traffic.source: trace {origin} holds {} record(s); at least 2 are required",
            records.len()
        )));
    }
    let mut prev = 0.0;
    for (i, rec) in records.iter().enumerate() {
        if !(rec.time.is_finite() && rec.time > 0.0) {
            return Err(spec_error(format!(
                "traffic.source: trace {origin} record {i} has a non-positive or non-finite time \
                 {}",
                rec.time
            )));
        }
        if rec.time == prev {
            return Err(spec_error(format!(
                "traffic.source: trace {origin} record {i} duplicates timestamp {}",
                rec.time
            )));
        }
        if rec.time < prev {
            return Err(spec_error(format!(
                "traffic.source: trace {origin} record {i} is out of order ({} after {prev}); \
                 records must be sorted by time",
                rec.time
            )));
        }
        if rec.src == rec.dst {
            return Err(spec_error(format!(
                "traffic.source: trace {origin} record {i} is self-addressed (node {})",
                rec.src
            )));
        }
        prev = rec.time;
    }
    Ok(())
}

/// Parses a JSON trace: an array of `{"time", "src", "dst"}` objects with an
/// optional `"class": "intra" | "inter"` declaration. Unknown keys are
/// rejected.
fn parse_trace_json(text: &str, origin: &str) -> Result<Vec<RawRecord>> {
    let doc = Json::parse(text)
        .map_err(|e| spec_error(format!("traffic.source: trace {origin}: {e}")))?;
    let rows = doc.as_array().ok_or_else(|| {
        spec_error(format!("traffic.source: trace {origin} must be a JSON array"))
    })?;
    let mut records = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let context = format!("trace {origin} record {i}");
        reject_unknown_keys(row, &context, &["time", "src", "dst", "class"])?;
        let time = get_f64(row, &context, "time")?;
        let src = get_node_id(row, &context, "src")?;
        let dst = get_node_id(row, &context, "dst")?;
        let class = match row.as_object().and_then(|o| o.get("class")) {
            None => None,
            Some(v) => Some(parse_class(v.as_str().unwrap_or_default(), &context)?),
        };
        records.push(RawRecord { time, src, dst, class });
    }
    check_trace(&records, origin)?;
    Ok(records)
}

/// Parses a CSV trace: one `time,src,dst[,class]` record per line, `#`
/// comments and blank lines skipped.
fn parse_trace_csv(text: &str, origin: &str) -> Result<Vec<RawRecord>> {
    let mut records = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let context = format!("trace {origin} line {}", lineno + 1);
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() < 3 || fields.len() > 4 {
            return Err(spec_error(format!(
                "traffic.source: {context} has {} field(s); expected time,src,dst[,class]",
                fields.len()
            )));
        }
        let time = fields[0].parse::<f64>().map_err(|_| {
            spec_error(format!("traffic.source: {context}: bad time {:?}", fields[0]))
        })?;
        let parse_node = |f: &str| {
            f.parse::<u64>()
                .map_err(|_| spec_error(format!("traffic.source: {context}: bad node id {f:?}")))
        };
        let src = parse_node(fields[1])?;
        let dst = parse_node(fields[2])?;
        let class = if fields.len() == 4 { Some(parse_class(fields[3], &context)?) } else { None };
        records.push(RawRecord { time, src, dst, class });
    }
    check_trace(&records, origin)?;
    Ok(records)
}

fn parse_class(s: &str, context: &str) -> Result<bool> {
    match s {
        "intra" => Ok(false),
        "inter" => Ok(true),
        other => Err(spec_error(format!(
            "traffic.source: {context}: unknown class {other:?} (expected \"intra\" or \"inter\")"
        ))),
    }
}

/// Reads a non-negative integer node id (rejecting fractional values).
fn get_node_id(v: &Json, context: &str, key: &str) -> Result<u64> {
    let raw = v
        .as_object()
        .and_then(|o| o.get(key))
        .ok_or_else(|| spec_error(format!("traffic.source: {context} is missing {key:?}")))?;
    raw.as_u64()
        .ok_or_else(|| spec_error(format!("traffic.source: {context}: {key} must be a node id")))
}

// ---- Declarative spec -----------------------------------------------------------

/// Plain-data description of a traffic source — the `"source"` key inside a
/// scenario spec's `"traffic"` object. [`Default`] is [`Poisson`]
/// (`TrafficSourceSpec::Poisson`), which is also what an absent `"source"` key
/// denotes, so every pre-existing spec file parses (and round-trips) unchanged.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum TrafficSourceSpec {
    /// The paper's stationary Poisson process (`{"kind": "poisson"}`).
    #[default]
    Poisson,
    /// Two-state MMPP (`{"kind": "on_off", "duty": d, "mean_on"?: t}`).
    OnOff {
        /// Long-run ON fraction, strictly in `(0, 1)`.
        duty: f64,
        /// Mean ON dwell time; default [`DEFAULT_BURST_MESSAGES`] expected
        /// messages per burst.
        mean_on: Option<f64>,
    },
    /// Per-node rate multipliers over an inner source
    /// (`{"kind": "heterogeneous", "multipliers": [...], "inner"?: {...}}`).
    HeterogeneousRates {
        /// One positive multiplier per node.
        multipliers: Vec<f64>,
        /// The wrapped source (`poisson` or `on_off`; default poisson).
        inner: Box<TrafficSourceSpec>,
    },
    /// Finite trace replay (`{"kind": "trace_replay", "path": "..."}` or
    /// inline `"records": [[time, src, dst], ...]`).
    TraceReplay {
        /// Trace file (JSON array of records, or `time,src,dst[,class]` CSV).
        /// Relative paths resolve against the process working directory, or
        /// against the spec file's own directory when the spec is loaded via
        /// [`crate::ScenarioSpec::from_json_file`].
        path: Option<String>,
        /// Inline records as `[time, src, dst]` triples — exactly one of
        /// `path` / `records` must be present.
        records: Option<Vec<(f64, u32, u32)>>,
    },
}

impl TrafficSourceSpec {
    /// Whether this is the default Poisson source (the spec JSON omits the
    /// `"source"` key in that case, keeping legacy files byte-stable).
    pub fn is_poisson(&self) -> bool {
        matches!(self, TrafficSourceSpec::Poisson)
    }

    /// Cheap structural validation (no file I/O): parameter ranges, inner
    /// source kinds, the path/records exclusivity of trace replay.
    pub fn validate(&self) -> Result<()> {
        match self {
            TrafficSourceSpec::Poisson => Ok(()),
            TrafficSourceSpec::OnOff { duty, mean_on } => check_on_off(*duty, *mean_on),
            TrafficSourceSpec::HeterogeneousRates { multipliers, inner } => {
                check_multipliers(multipliers)?;
                match inner.as_ref() {
                    TrafficSourceSpec::Poisson | TrafficSourceSpec::OnOff { .. } => {
                        inner.validate()
                    }
                    _ => Err(spec_error(
                        "traffic.source: heterogeneous inner source must be \"poisson\" or \
                         \"on_off\"",
                    )),
                }
            }
            TrafficSourceSpec::TraceReplay { path, records } => match (path, records) {
                (Some(_), None) | (None, Some(_)) => Ok(()),
                _ => Err(spec_error(
                    "traffic.source: trace_replay needs exactly one of \"path\" or \"records\"",
                )),
            },
        }
    }

    /// Builds the runtime source over a node partition. Trace files are read
    /// and fully validated here (typed [`SimError::InvalidSpec`] on malformed,
    /// unsorted or out-of-range records).
    pub fn build(
        &self,
        traffic: &TrafficConfig,
        total_nodes: usize,
        cluster_ranges: Vec<(usize, usize)>,
    ) -> Result<Box<dyn TrafficSource>> {
        self.validate()?;
        match self {
            TrafficSourceSpec::Poisson => {
                Ok(Box::new(Poisson::from_parts(traffic, total_nodes, cluster_ranges)?))
            }
            TrafficSourceSpec::OnOff { duty, mean_on } => {
                Ok(Box::new(OnOff::new(traffic, total_nodes, cluster_ranges, *duty, *mean_on)?))
            }
            TrafficSourceSpec::HeterogeneousRates { multipliers, inner } => {
                let inner = inner.build(traffic, total_nodes, cluster_ranges)?;
                Ok(Box::new(HeterogeneousRates::new(inner, multipliers.clone(), total_nodes)?))
            }
            TrafficSourceSpec::TraceReplay { .. } => {
                let records = self.load_trace()?;
                Ok(Box::new(TraceReplay::bind(&records, total_nodes, &cluster_ranges)?))
            }
        }
    }

    /// The long-run mean per-node rate this source delivers when the traffic
    /// configuration asks for `rate` — the load the analytical model should be
    /// evaluated at (the effective-rate / interrupted-Poisson approximation).
    pub fn effective_rate(&self, rate: f64, total_nodes: usize) -> Result<f64> {
        match self {
            TrafficSourceSpec::Poisson | TrafficSourceSpec::OnOff { .. } => Ok(rate),
            TrafficSourceSpec::HeterogeneousRates { multipliers, inner } => {
                let mean = multipliers.iter().sum::<f64>() / multipliers.len().max(1) as f64;
                Ok(inner.effective_rate(rate, total_nodes)? * mean)
            }
            TrafficSourceSpec::TraceReplay { .. } => {
                let records = self.load_trace()?;
                let span = records[records.len() - 1].time - records[0].time;
                if span <= 0.0 || total_nodes == 0 {
                    return Err(spec_error("traffic.source: trace spans zero time"));
                }
                Ok((records.len() - 1) as f64 / span / total_nodes as f64)
            }
        }
    }

    /// The burstiness index: the squared coefficient of variation (SCV) of
    /// the source's inter-arrival times. `1.0` for Poisson; `> 1` for bursty
    /// sources; empirical for traces. Reported by `model_vs_sim` so model
    /// error can be charted against burstiness.
    pub fn burstiness(&self, rate: f64) -> Result<f64> {
        match self {
            TrafficSourceSpec::Poisson => Ok(1.0),
            TrafficSourceSpec::OnOff { duty, mean_on } => {
                let mean_on = mean_on.unwrap_or(DEFAULT_BURST_MESSAGES * duty / rate);
                Ok(1.0 + 2.0 * (rate / duty) * (1.0 - duty).powi(2) * mean_on)
            }
            TrafficSourceSpec::HeterogeneousRates { inner, .. } => inner.burstiness(rate),
            TrafficSourceSpec::TraceReplay { .. } => {
                let records = self.load_trace()?;
                let gaps: Vec<f64> = records.windows(2).map(|w| w[1].time - w[0].time).collect();
                let n = gaps.len() as f64;
                let mean = gaps.iter().sum::<f64>() / n;
                let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / n;
                Ok(var / (mean * mean))
            }
        }
    }

    /// Re-anchors a relative trace-file path against `base` (the directory of
    /// the spec file this source was parsed from), so a committed spec can
    /// name its trace relative to itself and still load from any working
    /// directory. Absolute paths and non-trace sources are left untouched.
    pub fn anchor_trace_path(&mut self, base: &std::path::Path) {
        if let TrafficSourceSpec::TraceReplay { path: Some(p), .. } = self {
            let relative = std::path::Path::new(p.as_str());
            if relative.is_relative() {
                *p = base.join(relative).to_string_lossy().into_owned();
            }
        }
    }

    /// Loads and order-validates this trace-replay spec's records.
    pub(crate) fn load_trace(&self) -> Result<Vec<RawRecord>> {
        let TrafficSourceSpec::TraceReplay { path, records } = self else {
            return Err(spec_error("traffic.source: not a trace_replay source"));
        };
        match (path, records) {
            (Some(p), None) => {
                let text = std::fs::read_to_string(p).map_err(|e| {
                    spec_error(format!("traffic.source: cannot read trace file {p:?}: {e}"))
                })?;
                if text.trim_start().starts_with('[') {
                    parse_trace_json(&text, p)
                } else {
                    parse_trace_csv(&text, p)
                }
            }
            (None, Some(rows)) => {
                let records: Vec<RawRecord> = rows
                    .iter()
                    .map(|&(time, src, dst)| RawRecord {
                        time,
                        src: src as u64,
                        dst: dst as u64,
                        class: None,
                    })
                    .collect();
                check_trace(&records, "(inline)")?;
                Ok(records)
            }
            _ => Err(spec_error(
                "traffic.source: trace_replay needs exactly one of \"path\" or \"records\"",
            )),
        }
    }

    /// Serializes to the spec JSON shape (the value of the `"source"` key).
    pub fn to_json(&self) -> Json {
        let mut map = BTreeMap::new();
        match self {
            TrafficSourceSpec::Poisson => {
                map.insert("kind".to_string(), Json::String("poisson".to_string()));
            }
            TrafficSourceSpec::OnOff { duty, mean_on } => {
                map.insert("kind".to_string(), Json::String("on_off".to_string()));
                map.insert("duty".to_string(), Json::Number(*duty));
                if let Some(m) = mean_on {
                    map.insert("mean_on".to_string(), Json::Number(*m));
                }
            }
            TrafficSourceSpec::HeterogeneousRates { multipliers, inner } => {
                map.insert("kind".to_string(), Json::String("heterogeneous".to_string()));
                map.insert(
                    "multipliers".to_string(),
                    Json::Array(multipliers.iter().map(|&m| Json::Number(m)).collect()),
                );
                if !inner.is_poisson() {
                    map.insert("inner".to_string(), inner.to_json());
                }
            }
            TrafficSourceSpec::TraceReplay { path, records } => {
                map.insert("kind".to_string(), Json::String("trace_replay".to_string()));
                if let Some(p) = path {
                    map.insert("path".to_string(), Json::String(p.clone()));
                }
                if let Some(rows) = records {
                    map.insert(
                        "records".to_string(),
                        Json::Array(
                            rows.iter()
                                .map(|&(t, s, d)| {
                                    Json::Array(vec![
                                        Json::Number(t),
                                        Json::from_u64(s as u64),
                                        Json::from_u64(d as u64),
                                    ])
                                })
                                .collect(),
                        ),
                    );
                }
            }
        }
        Json::Object(map)
    }

    /// Parses the `"source"` value of a spec's traffic object. Unknown kinds
    /// and keys are typed [`SimError::InvalidSpec`] errors.
    pub fn from_json(v: &Json) -> Result<Self> {
        let context = "traffic.source";
        let spec = match get_str(v, context, "kind")? {
            "poisson" => {
                reject_unknown_keys(v, context, &["kind"])?;
                TrafficSourceSpec::Poisson
            }
            "on_off" => {
                reject_unknown_keys(v, context, &["kind", "duty", "mean_on"])?;
                let duty = get_f64(v, context, "duty")?;
                let mean_on =
                    match v.as_object().and_then(|o| o.get("mean_on")) {
                        None => None,
                        Some(m) => Some(m.as_f64().ok_or_else(|| {
                            spec_error("traffic.source: mean_on must be a number")
                        })?),
                    };
                TrafficSourceSpec::OnOff { duty, mean_on }
            }
            "heterogeneous" => {
                reject_unknown_keys(v, context, &["kind", "multipliers", "inner"])?;
                let raw = v
                    .as_object()
                    .and_then(|o| o.get("multipliers"))
                    .and_then(Json::as_array)
                    .ok_or_else(|| {
                        spec_error("traffic.source: heterogeneous needs a multipliers array")
                    })?;
                let multipliers = raw
                    .iter()
                    .map(|m| {
                        m.as_f64().ok_or_else(|| {
                            spec_error("traffic.source: multipliers must be numbers")
                        })
                    })
                    .collect::<Result<Vec<f64>>>()?;
                let inner = match v.as_object().and_then(|o| o.get("inner")) {
                    None => Box::new(TrafficSourceSpec::Poisson),
                    Some(inner) => Box::new(TrafficSourceSpec::from_json(inner)?),
                };
                TrafficSourceSpec::HeterogeneousRates { multipliers, inner }
            }
            "trace_replay" => {
                reject_unknown_keys(v, context, &["kind", "path", "records"])?;
                let path = match v.as_object().and_then(|o| o.get("path")) {
                    None => None,
                    Some(p) => Some(
                        p.as_str()
                            .ok_or_else(|| spec_error("traffic.source: path must be a string"))?
                            .to_string(),
                    ),
                };
                let records = match v.as_object().and_then(|o| o.get("records")) {
                    None => None,
                    Some(rows) => Some(parse_inline_records(rows)?),
                };
                TrafficSourceSpec::TraceReplay { path, records }
            }
            other => {
                return Err(spec_error(format!(
                    "traffic.source: unknown source kind {other:?} (expected \"poisson\", \
                     \"on_off\", \"heterogeneous\" or \"trace_replay\")"
                )))
            }
        };
        spec.validate()?;
        Ok(spec)
    }
}

fn parse_inline_records(rows: &Json) -> Result<Vec<(f64, u32, u32)>> {
    let rows =
        rows.as_array().ok_or_else(|| spec_error("traffic.source: records must be an array"))?;
    rows.iter()
        .enumerate()
        .map(|(i, row)| {
            let triple = row.as_array().filter(|a| a.len() == 3).ok_or_else(|| {
                spec_error(format!(
                    "traffic.source: records[{i}] must be a [time, src, dst] triple"
                ))
            })?;
            let time = triple[0].as_f64().ok_or_else(|| {
                spec_error(format!("traffic.source: records[{i}] time must be a number"))
            })?;
            let node = |j: usize, what: &str| {
                triple[j].as_u64().and_then(|n| u32::try_from(n).ok()).ok_or_else(|| {
                    spec_error(format!("traffic.source: records[{i}] {what} must be a node id"))
                })
            };
            Ok((time, node(1, "src")?, node(2, "dst")?))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcnet_system::organizations;
    use rand::SeedableRng;

    fn traffic(rate: f64) -> TrafficConfig {
        TrafficConfig::uniform(32, 256.0, rate).unwrap()
    }

    fn parts() -> (usize, Vec<(usize, usize)>) {
        let system = organizations::small_test_org();
        (system.total_nodes(), Poisson::cluster_ranges_of(&system))
    }

    #[test]
    fn poisson_trait_path_is_bit_identical_to_the_legacy_sampler() {
        // The extracted source must consume exactly the legacy draw sequence:
        // priming equals one inter-arrival from t = 0, re-arming equals one
        // inter-arrival from the previous time, destinations delegate 1:1.
        let (nodes, ranges) = parts();
        let cfg = traffic(1e-3);
        let legacy = Poisson::from_parts(&cfg, nodes, ranges.clone()).unwrap();
        let mut via_trait: Box<dyn TrafficSource> =
            TrafficSourceSpec::Poisson.build(&cfg, nodes, ranges).unwrap();

        let mut rng_a = SmallRng::seed_from_u64(99);
        let mut rng_b = SmallRng::seed_from_u64(99);
        let mut prev = 0.0;
        for step in 0..4096usize {
            let node = step % nodes;
            let t_legacy = prev + legacy.sample_interarrival(&mut rng_a);
            let d_legacy = legacy.sample_destination(&mut rng_a, node);
            let t_trait = via_trait.next_arrival(&mut rng_b, node, prev).unwrap();
            let d_trait = via_trait.destination(&mut rng_b, node);
            assert_eq!(t_legacy.to_bits(), t_trait.to_bits(), "arrival diverged at step {step}");
            assert_eq!(d_legacy, d_trait, "destination diverged at step {step}");
            prev = t_trait;
        }
        // And the RNG streams are fully aligned afterwards.
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
    }

    #[test]
    fn on_off_long_run_rate_converges_to_the_configured_rate() {
        let (nodes, ranges) = parts();
        let rate = 1e-3;
        for duty in [0.9, 0.5, 0.2] {
            let mut src = OnOff::new(&traffic(rate), nodes, ranges.clone(), duty, None).unwrap();
            let mut rng = SmallRng::seed_from_u64(7);
            let mut prev = 0.0;
            let n = 200_000u64;
            for _ in 0..n {
                prev = src.next_arrival(&mut rng, 0, prev).unwrap();
            }
            let observed = n as f64 / prev;
            assert!(
                (observed - rate).abs() < rate * 0.05,
                "duty {duty}: long-run rate {observed:.3e} vs configured {rate:.3e}"
            );
            assert!(src.burstiness() > 1.0, "duty {duty} must be burstier than Poisson");
        }
    }

    #[test]
    fn on_off_arrivals_are_strictly_monotone() {
        let (nodes, ranges) = parts();
        let mut src = OnOff::new(&traffic(1e-3), nodes, ranges, 0.3, None).unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut prev = 0.0;
        for _ in 0..50_000 {
            let next = src.next_arrival(&mut rng, 2, prev).unwrap();
            assert!(next > prev, "non-monotone arrival {next} after {prev}");
            prev = next;
        }
    }

    #[test]
    fn on_off_burstiness_grows_as_duty_shrinks() {
        let rate = 1e-3;
        let spec = |duty| TrafficSourceSpec::OnOff { duty, mean_on: None };
        let near_poisson = spec(0.95).burstiness(rate).unwrap();
        let mid = spec(0.5).burstiness(rate).unwrap();
        let bursty = spec(0.2).burstiness(rate).unwrap();
        assert!(1.0 < near_poisson && near_poisson < mid && mid < bursty);
        // With the rate-coupled default dwell, c² = 1 + 2K(1 − duty)².
        let expected = 1.0 + 2.0 * DEFAULT_BURST_MESSAGES * (1.0 - 0.5_f64).powi(2);
        assert!((mid - expected).abs() < 1e-9);
        assert_eq!(TrafficSourceSpec::Poisson.burstiness(rate).unwrap(), 1.0);
    }

    #[test]
    fn on_off_rejects_degenerate_duty_cycles() {
        for duty in [0.0, 1.0, -0.5, 1.5, f64::NAN] {
            assert!(
                TrafficSourceSpec::OnOff { duty, mean_on: None }.validate().is_err(),
                "duty {duty} must be rejected"
            );
        }
        assert!(TrafficSourceSpec::OnOff { duty: 0.5, mean_on: Some(-1.0) }.validate().is_err());
        assert!(TrafficSourceSpec::OnOff { duty: 0.5, mean_on: Some(1e4) }.validate().is_ok());
    }

    #[test]
    fn heterogeneous_multipliers_scale_per_node_rates() {
        let (nodes, ranges) = parts();
        let rate = 1e-3;
        let mut multipliers = vec![1.0; nodes];
        multipliers[0] = 4.0;
        let spec = TrafficSourceSpec::HeterogeneousRates {
            multipliers,
            inner: Box::new(TrafficSourceSpec::Poisson),
        };
        let mut src = spec.build(&traffic(rate), nodes, ranges).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        for (node, expect) in [(0usize, 4.0 * rate), (1usize, rate)] {
            let mut prev = 0.0;
            let n = 100_000u64;
            for _ in 0..n {
                prev = src.next_arrival(&mut rng, node, prev).unwrap();
            }
            let observed = n as f64 / prev;
            assert!(
                (observed - expect).abs() < expect * 0.05,
                "node {node}: rate {observed:.3e} vs expected {expect:.3e}"
            );
        }
        // Effective mean rate accounts for the multiplier mix.
        let effective = spec.effective_rate(rate, nodes).unwrap();
        let mean = (4.0 + (nodes - 1) as f64) / nodes as f64;
        assert!((effective - rate * mean).abs() < 1e-15);
    }

    #[test]
    fn heterogeneous_validation_rejects_bad_multiplier_sets() {
        let (nodes, ranges) = parts();
        let cfg = traffic(1e-3);
        let build = |multipliers: Vec<f64>| {
            TrafficSourceSpec::HeterogeneousRates {
                multipliers,
                inner: Box::new(TrafficSourceSpec::Poisson),
            }
            .build(&cfg, nodes, ranges.clone())
        };
        assert!(build(vec![1.0; nodes]).is_ok());
        assert!(build(vec![1.0; nodes - 1]).is_err(), "length must match the node count");
        let mut zero = vec![1.0; nodes];
        zero[3] = 0.0;
        assert!(build(zero).is_err());
        // A trace inner source is structurally rejected.
        let spec = TrafficSourceSpec::HeterogeneousRates {
            multipliers: vec![1.0; nodes],
            inner: Box::new(TrafficSourceSpec::TraceReplay {
                path: Some("x.csv".into()),
                records: None,
            }),
        };
        assert!(spec.validate().is_err());
    }

    fn inline_trace(records: Vec<(f64, u32, u32)>) -> TrafficSourceSpec {
        TrafficSourceSpec::TraceReplay { path: None, records: Some(records) }
    }

    #[test]
    fn trace_replay_replays_records_verbatim() {
        let (nodes, ranges) = parts();
        let rows = vec![(10.0, 0, 5), (20.0, 1, 0), (30.0, 0, 2), (45.0, 2, 7)];
        let spec = inline_trace(rows.clone());
        let mut src = spec.build(&traffic(1e-3), nodes, ranges).unwrap();
        assert_eq!(src.message_limit(), Some(4));
        let mut rng = SmallRng::seed_from_u64(1);
        // Node 0 has two records; nodes 1 and 2 one each; node 3 none.
        assert_eq!(src.next_arrival(&mut rng, 0, 0.0), Some(10.0));
        assert_eq!(src.destination(&mut rng, 0), 5);
        assert_eq!(src.next_arrival(&mut rng, 1, 0.0), Some(20.0));
        assert_eq!(src.destination(&mut rng, 1), 0);
        assert_eq!(src.next_arrival(&mut rng, 0, 10.0), Some(30.0));
        assert_eq!(src.destination(&mut rng, 0), 2);
        assert_eq!(src.next_arrival(&mut rng, 0, 30.0), None);
        assert_eq!(src.next_arrival(&mut rng, 3, 0.0), None);
        // No RNG draws at all: the stream is untouched.
        let mut fresh = SmallRng::seed_from_u64(1);
        assert_eq!(rng.gen::<u64>(), fresh.gen::<u64>());
        // Rebind rewinds the cursors for a bit-identical rerun.
        let mut src = src;
        src.rebind(&traffic(1e-3)).unwrap();
        assert_eq!(src.next_arrival(&mut rng, 0, 0.0), Some(10.0));
    }

    #[test]
    fn trace_rejection_paths_are_typed_invalid_spec() {
        let (nodes, ranges) = parts();
        let cfg = traffic(1e-3);
        let build = |spec: TrafficSourceSpec| spec.build(&cfg, nodes, ranges.clone());
        let is_invalid_spec =
            |r: Result<Box<dyn TrafficSource>>| matches!(r, Err(SimError::InvalidSpec { .. }));
        // Unsorted and duplicate timestamps.
        assert!(is_invalid_spec(build(inline_trace(vec![(2.0, 0, 1), (1.0, 1, 0)]))));
        assert!(is_invalid_spec(build(inline_trace(vec![(1.0, 0, 1), (1.0, 1, 0)]))));
        // Non-positive time, self-addressed record, out-of-range node id.
        assert!(is_invalid_spec(build(inline_trace(vec![(0.0, 0, 1), (1.0, 1, 0)]))));
        assert!(is_invalid_spec(build(inline_trace(vec![(1.0, 0, 0), (2.0, 1, 0)]))));
        assert!(is_invalid_spec(build(inline_trace(vec![(1.0, 0, 1), (2.0, 9999, 0)]))));
        // Too short, and neither/both of path & records.
        assert!(is_invalid_spec(build(inline_trace(vec![(1.0, 0, 1)]))));
        assert!(is_invalid_spec(build(TrafficSourceSpec::TraceReplay {
            path: None,
            records: None
        })));
        assert!(is_invalid_spec(build(TrafficSourceSpec::TraceReplay {
            path: Some("/nonexistent/trace.csv".into()),
            records: Some(vec![(1.0, 0, 1), (2.0, 1, 0)]),
        })));
        // A missing file is a typed error, not a panic.
        assert!(is_invalid_spec(build(TrafficSourceSpec::TraceReplay {
            path: Some("/nonexistent/trace.csv".into()),
            records: None,
        })));
    }

    #[test]
    fn trace_file_parsers_validate_records() {
        // CSV: comments and blank lines skipped, class column optional.
        let csv = "# demo trace\n10.0, 0, 5\n20.0, 1, 0, intra\n\n30.5, 0, 2\n";
        let records = parse_trace_csv(csv, "t.csv").unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[1], RawRecord { time: 20.0, src: 1, dst: 0, class: Some(false) });
        // Malformed CSV rows are typed errors.
        for bad in [
            "10.0, 0\n20.0, 1, 0",
            "ten, 0, 1\n20.0, 1, 0",
            "10.0, a, 1\n20.0, 1, 0",
            "10.0, 0, 1, express\n20.0, 1, 0",
            "10.0, 0, 1, 2, 3\n20.0, 1, 0",
        ] {
            assert!(parse_trace_csv(bad, "t.csv").is_err(), "accepted malformed CSV {bad:?}");
        }
        // JSON: array of objects with unknown keys rejected.
        let json = r#"[{"time": 1.5, "src": 0, "dst": 3},
                       {"time": 2.5, "src": 3, "dst": 0, "class": "intra"}]"#;
        let records = parse_trace_json(json, "t.json").unwrap();
        assert_eq!(records[1].class, Some(false));
        assert!(parse_trace_json(
            r#"[{"time": 1.0, "src": 0, "dst": 3, "extra": 1},
                                     {"time": 2.0, "src": 3, "dst": 0}]"#,
            "t.json"
        )
        .is_err());
        assert!(parse_trace_json(r#"{"time": 1.0}"#, "t.json").is_err());
        assert!(
            parse_trace_json(
                r#"[{"time": 1.0, "src": 0.5, "dst": 3},
                                     {"time": 2.0, "src": 3, "dst": 0}]"#,
                "t.json"
            )
            .is_err(),
            "fractional node ids must be rejected"
        );
    }

    #[test]
    fn trace_class_declarations_are_checked_against_the_partition() {
        let (nodes, ranges) = parts();
        // small_test_org: cluster 0 covers a prefix of the node space; node 0
        // and node (nodes-1) are in different clusters.
        let intra_pair = (0u64, 1u64);
        let inter_pair = (0u64, (nodes - 1) as u64);
        let mk = |pair: (u64, u64), class| {
            vec![
                RawRecord { time: 1.0, src: pair.0, dst: pair.1, class: Some(class) },
                RawRecord { time: 2.0, src: pair.1, dst: pair.0, class: None },
            ]
        };
        assert!(TraceReplay::bind(&mk(intra_pair, false), nodes, &ranges).is_ok());
        assert!(TraceReplay::bind(&mk(intra_pair, true), nodes, &ranges).is_err());
        assert!(TraceReplay::bind(&mk(inter_pair, true), nodes, &ranges).is_ok());
        assert!(TraceReplay::bind(&mk(inter_pair, false), nodes, &ranges).is_err());
    }

    #[test]
    fn spec_json_round_trips_every_kind() {
        let specs = [
            TrafficSourceSpec::Poisson,
            TrafficSourceSpec::OnOff { duty: 0.25, mean_on: None },
            TrafficSourceSpec::OnOff { duty: 0.5, mean_on: Some(2.5e4) },
            TrafficSourceSpec::HeterogeneousRates {
                multipliers: vec![1.0, 2.0, 0.5],
                inner: Box::new(TrafficSourceSpec::OnOff { duty: 0.5, mean_on: None }),
            },
            TrafficSourceSpec::TraceReplay {
                path: Some("specs/traces/a.csv".into()),
                records: None,
            },
            TrafficSourceSpec::TraceReplay {
                path: None,
                records: Some(vec![(1.0, 0, 1), (2.0, 1, 0)]),
            },
        ];
        for spec in specs {
            let rendered = spec.to_json().to_compact();
            let parsed = TrafficSourceSpec::from_json(&Json::parse(&rendered).unwrap()).unwrap();
            assert_eq!(parsed, spec, "round trip failed for {rendered}");
        }
    }

    #[test]
    fn spec_json_rejects_unknown_kinds_and_keys() {
        let parse = |s: &str| TrafficSourceSpec::from_json(&Json::parse(s).unwrap());
        assert!(parse(r#"{"kind": "self_similar"}"#).is_err());
        assert!(parse(r#"{"kind": "poisson", "duty": 0.5}"#).is_err());
        assert!(parse(r#"{"kind": "on_off"}"#).is_err(), "duty is required");
        assert!(parse(r#"{"kind": "on_off", "duty": 0.5, "burst": 3}"#).is_err());
        assert!(parse(r#"{"kind": "on_off", "duty": 1.5}"#).is_err());
        assert!(parse(r#"{"kind": "heterogeneous"}"#).is_err());
        assert!(parse(r#"{"kind": "heterogeneous", "multipliers": [1.0, "x"]}"#).is_err());
        assert!(
            parse(
                r#"{"kind": "heterogeneous", "multipliers": [1.0],
                      "inner": {"kind": "trace_replay", "path": "t.csv"}}"#
            )
            .is_err(),
            "trace inner source must be rejected"
        );
        assert!(parse(r#"{"kind": "trace_replay"}"#).is_err());
        assert!(parse(r#"{"kind": "trace_replay", "path": "t.csv", "format": "csv"}"#).is_err());
        assert!(parse(r#"{"kind": "trace_replay", "records": [[1.0, 0]]}"#).is_err());
    }
}
