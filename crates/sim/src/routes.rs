//! Interned route storage: every `(src, dst)` itinerary as a slice of one flat arena.
//!
//! The wormhole engine used to call `Fabric::build_path` for every generated
//! message, which re-ran the routing algorithm and allocated several fresh
//! `Vec`s per message. The [`RouteTable`] removes all of that from the hot path,
//! for **either fabric backend** ([`FabricBackend::Tree`] or
//! [`FabricBackend::Cube`]):
//!
//! * **One flat arena.** All itineraries live in a single `Vec<GlobalChannelId>`;
//!   a route is a [`RouteRef`] — an `(offset, len)` pair — and resolving it is a
//!   bounds-checked slice of the arena.
//! * **Shared segments (tree).** Tree inter-cluster paths are the concatenation
//!   `ascent(src) ⊕ concentrator ⊕ icn2(c_s, c_d) ⊕ dispatcher ⊕ descent(dst)`.
//!   The three variable segments are computed once per node / cluster pair at
//!   build time (`2N + C²` routing calls), so materialising an inter-cluster
//!   pair afterwards is a handful of `memcpy`s — the routing algorithm never
//!   runs for it again. Intra-cluster pairs (whose single-network routes cannot
//!   be composed from shared segments) are routed straight into the arena
//!   through the allocation-free `NcaRouter::route_into` walker on first use.
//! * **Direct walks (cube).** Torus routes have no shareable middle segment
//!   (every hop's channel id depends on the node it leaves), so a first-seen
//!   pair runs the dimension-order walker straight into the arena through
//!   [`CubeFabric::route_into`], reusing one hop scratch buffer; like the tree
//!   path this allocates nothing per message after the first lookup.
//! * **Interned entries.** A pair's itinerary is materialised on its first
//!   lookup and interned forever: every subsequent message between the same
//!   `(src, dst)` resolves to the *same* arena slice, so each distinct pair
//!   occupies storage exactly once no matter how many messages use it.
//!   (Full-path deduplication across *different* pairs would never fire: a
//!   node's injection and ejection channels make every pair's path unique, in
//!   both backends.)
//! * **Precomputed metadata.** The drain bottleneck (slowest per-flit channel
//!   time) and the source/destination clusters (sub-ring neighborhoods for the
//!   torus) are stored per entry, so `handle_generate` never scans a path.
//!
//! The per-pair entry index is three flat arrays (packed route word, packed
//! cluster word, bottleneck) whose zero bit-pattern is the "unmaterialised"
//! sentinel — `vec![0; n]` lowers to `alloc_zeroed`, so even the `N²` index of
//! a 1000-node fabric costs fresh zero pages rather than a memset, and only
//! pages of pairs actually used are ever touched.
//!
//! Lookups after a pair's first are allocation-free reads. The table produces
//! channel sequences identical to [`FabricBackend::build_path`] for every pair
//! (covered by equivalence tests here, in `tests/property_tests.rs` and in
//! `tests/torus_invariants.rs`), and it consumes nothing from the simulation
//! RNG — so swapping per-message route construction for the table is
//! bit-transparent to engine results.

use crate::backend::FabricBackend;
use crate::channels::GlobalChannelId;
use crate::cube::CubeFabric;
use crate::fabric::{Fabric, Itinerary};
use crate::{Result, SimError};
use mcnet_topology::kary_ncube::CubeHop;
use mcnet_topology::routing::NcaRouter;
use mcnet_topology::NodeId;

/// A route as a slice of the table's arena.
///
/// The offset is 32-bit so the whole reference packs into 6 bytes inside the
/// compact [`crate::message::MessageState`]; an arena of more than 2³²
/// channels (hundreds of millions of distinct pairs) is rejected at interning
/// time rather than silently truncated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteRef {
    offset: u32,
    len: u16,
}

impl RouteRef {
    /// Number of channels on the route.
    #[inline]
    pub fn len(self) -> usize {
        self.len as usize
    }

    /// `true` if the route crosses no channel (never the case for real entries).
    #[inline]
    pub fn is_empty(self) -> bool {
        self.len == 0
    }
}

/// One resolved `(src, dst)` table entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteEntry {
    /// The interned channel sequence.
    pub route: RouteRef,
    /// Slowest per-flit channel time on the path (drain bottleneck).
    pub bottleneck: f64,
    /// Source cluster (tree) / sub-ring neighborhood (torus) index.
    pub src_cluster: u32,
    /// Destination cluster (tree) / sub-ring neighborhood (torus) index.
    pub dst_cluster: u32,
}

/// A precomputed path fragment (ascent, descent or ICN2 crossing).
#[derive(Debug, Clone, Copy)]
struct Segment {
    offset: u32,
    len: u16,
    bottleneck: f64,
}

const LEN_BITS: u32 = 16;
const LEN_MASK: u64 = (1 << LEN_BITS) - 1;

/// Tree-backend precompute: the shared inter-cluster segments plus the cluster
/// geometry needed to compose them.
#[derive(Debug, Clone)]
struct TreeSegments {
    /// Per-node ECN1 ascent (node → root switch, concentrator side).
    ascent: Vec<Segment>,
    /// Per-node ECN1 descent (home root switch → node, dispatcher side).
    descent: Vec<Segment>,
    /// Per-`(src_cluster, dst_cluster)` ICN2 crossing.
    icn2: Vec<Segment>,
    clusters: usize,
    /// Half-open global-node ranges `[start, end)` of each cluster, in order.
    cluster_bounds: Vec<(usize, usize)>,
    /// Concentrator/dispatcher channel ids, `[concentrate(c), dispatch(c)]` per cluster.
    bridges: Vec<[GlobalChannelId; 2]>,
    /// Per-flit time of the bridge resources (the switch channel time).
    bridge_flit: f64,
    /// Scratch buffer reused by intra-pair materialisation.
    scratch: Vec<mcnet_topology::graph::ChannelId>,
}

impl TreeSegments {
    /// The cluster a node belongs to (binary search over the cluster bounds).
    fn cluster_of(&self, node: usize) -> usize {
        self.cluster_bounds
            .binary_search_by(|probe| {
                use std::cmp::Ordering;
                if node < probe.0 {
                    Ordering::Greater
                } else if node >= probe.1 {
                    Ordering::Less
                } else {
                    Ordering::Equal
                }
            })
            .expect("node belongs to some cluster")
    }
}

/// Backend-specific first-lookup machinery.
#[derive(Debug, Clone)]
enum Materializer {
    Tree(TreeSegments),
    /// The cube needs no precompute — only a reusable hop scratch buffer.
    Cube {
        hop_scratch: Vec<CubeHop>,
    },
}

/// The interned all-pairs route table of one [`FabricBackend`].
#[derive(Debug, Clone)]
pub struct RouteTable {
    nodes: usize,
    arena: Vec<GlobalChannelId>,
    /// Per-pair `offset << 16 | len`; `0` means "not materialised yet" (a real
    /// entry always has `len >= 1`).
    route_packed: Vec<u64>,
    /// Per-pair `src_cluster << 16 | dst_cluster`, valid once materialised.
    cluster_packed: Vec<u32>,
    /// Per-pair drain bottleneck, valid once materialised.
    bottleneck: Vec<f64>,
    materializer: Materializer,
    /// Number of entries materialised so far, for diagnostics.
    materialized: usize,
    /// Free lists of recycled per-message scratch regions, indexed by region
    /// length in channels. Only offsets handed out by [`RouteTable::alloc_scratch`]
    /// ever land here, so interned entries are never recycled.
    scratch_free: Vec<Vec<u32>>,
    /// Scratch regions currently allocated (live adaptive messages).
    scratch_live: usize,
    /// High-water mark of simultaneously live scratch regions, for diagnostics.
    scratch_peak: usize,
}

impl RouteTable {
    /// Builds the table for a fabric backend. For the tree this precomputes the
    /// shared inter-cluster segments (`2N + C²` routing calls); for the cube no
    /// precompute is needed. Either way the per-pair index starts zeroed and
    /// itineraries are interned on first lookup.
    pub fn build(backend: &FabricBackend) -> Result<Self> {
        let nodes = backend.total_nodes();
        let mut table = RouteTable {
            nodes,
            arena: Vec::new(),
            route_packed: vec![0u64; nodes * nodes],
            cluster_packed: vec![0u32; nodes * nodes],
            bottleneck: vec![0.0f64; nodes * nodes],
            materializer: match backend {
                FabricBackend::Tree(_) => Materializer::Tree(TreeSegments {
                    ascent: Vec::with_capacity(nodes),
                    descent: Vec::with_capacity(nodes),
                    icn2: Vec::new(),
                    clusters: 0,
                    cluster_bounds: Vec::new(),
                    bridges: Vec::new(),
                    bridge_flit: 0.0,
                    scratch: Vec::new(),
                }),
                FabricBackend::Cube(_) => Materializer::Cube { hop_scratch: Vec::new() },
            },
            materialized: 0,
            scratch_free: Vec::new(),
            scratch_live: 0,
            scratch_peak: 0,
        };
        if let FabricBackend::Tree(fabric) = backend {
            table.precompute_tree_segments(fabric)?;
        }
        Ok(table)
    }

    /// Fills in the tree backend's shared segments (ascents, descents, ICN2
    /// crossings, bridge ids and cluster bounds).
    fn precompute_tree_segments(&mut self, fabric: &Fabric) -> Result<()> {
        let system = fabric.system();
        let nodes = system.total_nodes();
        let clusters = system.num_clusters();

        let mut segments = TreeSegments {
            ascent: Vec::with_capacity(nodes),
            descent: Vec::with_capacity(nodes),
            icn2: vec![Segment { offset: 0, len: 0, bottleneck: 0.0 }; clusters * clusters],
            clusters,
            cluster_bounds: (0..clusters)
                .map(|c| {
                    let r = system.node_range(c).expect("cluster index in range");
                    (r.start, r.end)
                })
                .collect(),
            bridges: (0..clusters)
                .map(|c| [fabric.bridges().concentrate(c), fabric.bridges().dispatch(c)])
                .collect(),
            bridge_flit: fabric.t_cs(),
            scratch: Vec::new(),
        };

        let mut scratch: Vec<mcnet_topology::graph::ChannelId> = Vec::new();

        // ECN1 ascent and descent segments, one of each per node. The descent
        // starts at the node's *home* root switch — the same balanced root its
        // own ascents use — matching `Fabric::build_path`.
        for cluster in 0..clusters {
            let range = system.node_range(cluster).map_err(SimError::from)?;
            let net = fabric.ecn1(cluster);
            let router = NcaRouter::new(net.tree());
            for local in 0..range.len() {
                let node = NodeId::from_index(local);

                scratch.clear();
                let root = router.ascent_into(node, &mut scratch).map_err(SimError::from)?;
                let ascent =
                    Self::intern_segment(&mut self.arena, fabric, net.channel_base(), &scratch);

                scratch.clear();
                router.descent_into(root, node, &mut scratch).map_err(SimError::from)?;
                let descent =
                    Self::intern_segment(&mut self.arena, fabric, net.channel_base(), &scratch);

                segments.ascent.push(ascent);
                segments.descent.push(descent);
            }
        }
        debug_assert_eq!(segments.ascent.len(), nodes);

        // ICN2 crossings, one per ordered cluster pair.
        let net = fabric.icn2();
        let router = NcaRouter::new(net.tree());
        for c1 in 0..clusters {
            for c2 in 0..clusters {
                if c1 == c2 {
                    continue;
                }
                scratch.clear();
                router
                    .route_into(NodeId::from_index(c1), NodeId::from_index(c2), &mut scratch)
                    .map_err(SimError::from)?;
                segments.icn2[c1 * clusters + c2] =
                    Self::intern_segment(&mut self.arena, fabric, net.channel_base(), &scratch);
            }
        }

        self.materializer = Materializer::Tree(segments);
        Ok(())
    }

    /// Appends a globalized channel sequence to the arena, returning its segment.
    fn intern_segment(
        arena: &mut Vec<GlobalChannelId>,
        fabric: &Fabric,
        channel_base: u32,
        channels: &[mcnet_topology::graph::ChannelId],
    ) -> Segment {
        let offset = arena.len() as u32;
        let mut bottleneck = 0.0f64;
        for ch in channels {
            let global = channel_base + ch.0;
            bottleneck = bottleneck.max(fabric.flit_time(global));
            arena.push(global);
        }
        debug_assert!(channels.len() <= u16::MAX as usize, "path longer than u16");
        Segment { offset, len: channels.len() as u16, bottleneck }
    }

    /// Total number of nodes the table covers.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of `(src, dst)` entries materialised (interned) so far.
    pub fn materialized_entries(&self) -> usize {
        self.materialized
    }

    /// Current arena length in channels (storage diagnostics).
    pub fn arena_len(&self) -> usize {
        self.arena.len()
    }

    /// Resolves a route to its channel slice.
    #[inline]
    pub fn channels(&self, route: RouteRef) -> &[GlobalChannelId] {
        &self.arena[route.offset as usize..route.offset as usize + route.len as usize]
    }

    /// Allocates a per-message scratch region of exactly `len` channels in the
    /// shared arena, reusing a previously released region of the same length
    /// when one exists. Adaptive policies write each message's channel choices
    /// into its region (via [`RouteTable::set_channel`] /
    /// [`RouteTable::fill_scratch`]) and return it with
    /// [`RouteTable::release_scratch`] when the message leaves the network, so
    /// steady-state adaptive runs allocate nothing per message either — the
    /// arena grows to the peak number of in-flight messages and then cycles.
    ///
    /// Deterministic interning and scratch regions share the arena but never
    /// alias: interned entries are append-only and the free lists only contain
    /// offsets handed out here.
    pub fn alloc_scratch(&mut self, len: usize) -> RouteRef {
        assert!(len >= 1 && len <= u16::MAX as usize, "scratch route length {len} out of range");
        self.scratch_live += 1;
        self.scratch_peak = self.scratch_peak.max(self.scratch_live);
        if let Some(offset) = self.scratch_free.get_mut(len).and_then(Vec::pop) {
            return RouteRef { offset, len: len as u16 };
        }
        assert!(
            self.arena.len() + len <= u32::MAX as usize,
            "route arena exceeds the 32-bit RouteRef offset"
        );
        let offset = self.arena.len() as u32;
        self.arena.resize(self.arena.len() + len, 0);
        RouteRef { offset, len: len as u16 }
    }

    /// Returns a scratch region to the free list for reuse.
    ///
    /// Must only be called with refs produced by [`RouteTable::alloc_scratch`];
    /// releasing an interned entry would let later messages overwrite it.
    pub fn release_scratch(&mut self, route: RouteRef) {
        let len = route.len();
        if self.scratch_free.len() <= len {
            self.scratch_free.resize_with(len + 1, Vec::new);
        }
        self.scratch_free[len].push(route.offset);
        debug_assert!(self.scratch_live > 0, "release without a live scratch route");
        self.scratch_live -= 1;
    }

    /// Writes one channel of a scratch region (adaptive per-hop commitment).
    #[inline]
    pub fn set_channel(&mut self, route: RouteRef, idx: usize, channel: GlobalChannelId) {
        debug_assert!(idx < route.len());
        self.arena[route.offset as usize + idx] = channel;
    }

    /// Copies a full channel sequence into a scratch region (randomized tree
    /// paths, which are materialised whole at generation time).
    pub fn fill_scratch(&mut self, route: RouteRef, channels: &[GlobalChannelId]) {
        debug_assert_eq!(channels.len(), route.len(), "scratch fill length mismatch");
        self.arena[route.offset as usize..route.offset as usize + channels.len()]
            .copy_from_slice(channels);
    }

    /// Rewinds the per-run diagnostics for a table reused across runs. The
    /// interned entries, the arena and the scratch free lists are all kept:
    /// interned routes are pure functions of the backend and consume no RNG,
    /// and scratch regions are fully rewritten before every read, so carrying
    /// them over is bit-transparent to the next run — it just skips the
    /// re-materialisation a fresh table would pay.
    pub fn begin_run(&mut self) {
        debug_assert_eq!(self.scratch_live, 0, "scratch routes leaked across runs");
        self.scratch_live = 0;
        self.scratch_peak = 0;
    }

    /// Scratch regions currently allocated (live adaptive messages).
    pub fn live_scratch_routes(&self) -> usize {
        self.scratch_live
    }

    /// High-water mark of simultaneously live scratch regions.
    pub fn peak_scratch_routes(&self) -> usize {
        self.scratch_peak
    }

    /// Looks up (interning on first use) the entry for `src → dst`.
    ///
    /// After a pair's first lookup this is a pure table read. The first lookup
    /// interns the itinerary: tree inter-cluster pairs are composed from the
    /// precomputed segments with a few `memcpy`s; tree intra-cluster and all
    /// torus pairs run an allocation-free route walker straight into the arena.
    ///
    /// # Panics
    /// Panics if `src == dst` or either index is out of range — the traffic
    /// layer never generates such messages.
    #[inline]
    pub fn entry(&mut self, backend: &FabricBackend, src: usize, dst: usize) -> RouteEntry {
        assert_ne!(src, dst, "message from node {src} to itself");
        let idx = src * self.nodes + dst;
        let packed = self.route_packed[idx];
        if packed != 0 {
            let clusters = self.cluster_packed[idx];
            return RouteEntry {
                route: RouteRef {
                    offset: (packed >> LEN_BITS) as u32,
                    len: (packed & LEN_MASK) as u16,
                },
                bottleneck: self.bottleneck[idx],
                src_cluster: clusters >> 16,
                dst_cluster: clusters & 0xFFFF,
            };
        }
        self.materialize(backend, src, dst)
    }

    /// Interns the itinerary of a first-seen pair.
    #[cold]
    fn materialize(&mut self, backend: &FabricBackend, src: usize, dst: usize) -> RouteEntry {
        assert!(
            self.arena.len() <= u32::MAX as usize,
            "route arena exceeds the 32-bit RouteRef offset"
        );
        let offset = self.arena.len() as u64;
        let (len, bottleneck, src_cluster, dst_cluster) = match (&mut self.materializer, backend) {
            (Materializer::Tree(segments), FabricBackend::Tree(fabric)) => {
                Self::materialize_tree(&mut self.arena, segments, fabric, src, dst)
            }
            (Materializer::Cube { hop_scratch }, FabricBackend::Cube(fabric)) => {
                Self::materialize_cube(&mut self.arena, hop_scratch, fabric, src, dst)
            }
            _ => panic!("route table used with a backend of the wrong kind"),
        };

        let idx = src * self.nodes + dst;
        self.route_packed[idx] = offset << LEN_BITS | len as u64;
        // The cluster word packs two 16-bit indices. Any system whose N² pair
        // index fits in memory has far fewer than 2^16 clusters/neighborhoods,
        // but the assumption is made explicit rather than silently truncated.
        debug_assert!(
            src_cluster <= 0xFFFF && dst_cluster <= 0xFFFF,
            "cluster index exceeds the 16-bit packing"
        );
        self.cluster_packed[idx] = (src_cluster as u32) << 16 | dst_cluster as u32;
        self.bottleneck[idx] = bottleneck;
        self.materialized += 1;
        RouteEntry {
            route: RouteRef { offset: offset as u32, len },
            bottleneck,
            src_cluster: src_cluster as u32,
            dst_cluster: dst_cluster as u32,
        }
    }

    /// Tree materialisation: segment composition (inter) or a fresh ICN1 walk
    /// (intra). Returns `(len, bottleneck, src_cluster, dst_cluster)`.
    fn materialize_tree(
        arena: &mut Vec<GlobalChannelId>,
        segments: &mut TreeSegments,
        fabric: &Fabric,
        src: usize,
        dst: usize,
    ) -> (u16, f64, usize, usize) {
        let src_cluster = segments.cluster_of(src);
        let dst_cluster = segments.cluster_of(dst);

        if src_cluster == dst_cluster {
            // Intra-cluster: run the route walker straight into the arena.
            let start = segments.cluster_bounds[src_cluster].0;
            let net = fabric.icn1(src_cluster);
            let scratch = &mut segments.scratch;
            scratch.clear();
            NcaRouter::new(net.tree())
                .route_into(
                    NodeId::from_index(src - start),
                    NodeId::from_index(dst - start),
                    scratch,
                )
                .expect("in-range distinct nodes are always routable");
            let seg = Self::intern_segment(arena, fabric, net.channel_base(), scratch);
            (seg.len, seg.bottleneck, src_cluster, dst_cluster)
        } else {
            // Inter-cluster: compose the precomputed segments by memcpy.
            let ascent = segments.ascent[src];
            let icn2 = segments.icn2[src_cluster * segments.clusters + dst_cluster];
            let descent = segments.descent[dst];
            let [concentrate, _] = segments.bridges[src_cluster];
            let [_, dispatch] = segments.bridges[dst_cluster];

            let len = ascent.len + 1 + icn2.len + 1 + descent.len;
            arena.reserve(len as usize);
            Self::copy_segment(arena, ascent);
            arena.push(concentrate);
            Self::copy_segment(arena, icn2);
            arena.push(dispatch);
            Self::copy_segment(arena, descent);

            let bottleneck = ascent
                .bottleneck
                .max(icn2.bottleneck)
                .max(descent.bottleneck)
                .max(segments.bridge_flit);
            (len, bottleneck, src_cluster, dst_cluster)
        }
    }

    /// Cube materialisation: the dimension-order walker appends the globalized
    /// itinerary directly; the bottleneck is read off the appended channels.
    fn materialize_cube(
        arena: &mut Vec<GlobalChannelId>,
        hop_scratch: &mut Vec<CubeHop>,
        fabric: &CubeFabric,
        src: usize,
        dst: usize,
    ) -> (u16, f64, usize, usize) {
        let start = arena.len();
        fabric
            .route_into(src, dst, hop_scratch, arena)
            .expect("in-range distinct nodes are always routable");
        let len = arena.len() - start;
        debug_assert!(len <= u16::MAX as usize, "path longer than u16");
        let bottleneck = arena[start..].iter().map(|&c| fabric.flit_time(c)).fold(0.0f64, f64::max);
        (len as u16, bottleneck, fabric.neighborhood_of(src), fabric.neighborhood_of(dst))
    }

    #[inline]
    fn copy_segment(arena: &mut Vec<GlobalChannelId>, seg: Segment) {
        let start = seg.offset as usize;
        arena.extend_from_within(start..start + seg.len as usize);
    }

    /// Rebuilds an owned [`Itinerary`] for a pair — the compatibility/verification
    /// view used by tests to compare against [`FabricBackend::build_path`].
    pub fn itinerary(
        &mut self,
        backend: &FabricBackend,
        src: usize,
        dst: usize,
    ) -> Result<Itinerary> {
        if src == dst || src >= self.nodes || dst >= self.nodes {
            return Err(SimError::InvalidConfiguration {
                reason: format!("invalid route table pair {src} -> {dst}"),
            });
        }
        let entry = self.entry(backend, src, dst);
        Ok(Itinerary {
            channels: self.channels(entry.route).to_vec(),
            bottleneck: entry.bottleneck,
            src_cluster: entry.src_cluster,
            dst_cluster: entry.dst_cluster,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcnet_system::{organizations, TorusSystem, TrafficConfig};

    fn build_pair() -> (FabricBackend, RouteTable) {
        let system = organizations::small_test_org();
        let traffic = TrafficConfig::uniform(32, 256.0, 1e-4).unwrap();
        let backend = FabricBackend::tree(&system, &traffic).unwrap();
        let table = RouteTable::build(&backend).unwrap();
        (backend, table)
    }

    fn build_cube_pair() -> (FabricBackend, RouteTable) {
        let torus = TorusSystem::new(4, 2).unwrap();
        let traffic = TrafficConfig::uniform(32, 256.0, 1e-4).unwrap();
        let backend = FabricBackend::cube(&torus, &traffic).unwrap();
        let table = RouteTable::build(&backend).unwrap();
        (backend, table)
    }

    #[test]
    fn all_pairs_match_freshly_computed_paths() {
        let (backend, mut table) = build_pair();
        let n = backend.total_nodes();
        for src in 0..n {
            for dst in 0..n {
                if src == dst {
                    assert!(table.itinerary(&backend, src, dst).is_err());
                    continue;
                }
                let fresh = backend.build_path(src, dst).unwrap();
                let interned = table.itinerary(&backend, src, dst).unwrap();
                assert_eq!(interned.channels, fresh.channels, "{src}->{dst}");
                assert_eq!(interned.src_cluster, fresh.src_cluster);
                assert_eq!(interned.dst_cluster, fresh.dst_cluster);
                assert!((interned.bottleneck - fresh.bottleneck).abs() < 1e-15);
            }
        }
        assert_eq!(table.materialized_entries(), n * (n - 1));
    }

    #[test]
    fn cube_all_pairs_match_freshly_computed_paths() {
        let (backend, mut table) = build_cube_pair();
        let n = backend.total_nodes();
        for src in 0..n {
            for dst in 0..n {
                if src == dst {
                    assert!(table.itinerary(&backend, src, dst).is_err());
                    continue;
                }
                let fresh = backend.build_path(src, dst).unwrap();
                let interned = table.itinerary(&backend, src, dst).unwrap();
                assert_eq!(interned.channels, fresh.channels, "{src}->{dst}");
                assert_eq!(interned.src_cluster, fresh.src_cluster);
                assert_eq!(interned.dst_cluster, fresh.dst_cluster);
                assert!((interned.bottleneck - fresh.bottleneck).abs() < 1e-15);
            }
        }
        assert_eq!(table.materialized_entries(), n * (n - 1));
    }

    #[test]
    fn pairs_are_interned_on_first_lookup() {
        let (backend, mut table) = build_pair();
        assert_eq!(table.materialized_entries(), 0);

        // First intra lookup interns one entry; the repeat is a pure read.
        let e1 = table.entry(&backend, 0, 1);
        let after_intra = table.arena_len();
        assert_eq!(table.materialized_entries(), 1);
        let e1_again = table.entry(&backend, 0, 1);
        assert_eq!(e1, e1_again, "repeated lookups share the interned entry");
        assert_eq!(table.arena_len(), after_intra);

        // First inter lookup extends the arena once; the repeat is pure.
        let last = table.nodes() - 1;
        let e2 = table.entry(&backend, 0, last);
        let grown = table.arena_len();
        assert!(grown > after_intra);
        assert_eq!(table.materialized_entries(), 2);
        let e2_again = table.entry(&backend, 0, last);
        assert_eq!(table.arena_len(), grown);
        assert_eq!(e2, e2_again);
        assert_ne!(e1.route, e2.route);
    }

    #[test]
    fn cube_pairs_are_interned_on_first_lookup() {
        let (backend, mut table) = build_cube_pair();
        assert_eq!(table.materialized_entries(), 0);
        assert_eq!(table.arena_len(), 0, "the cube needs no precomputed segments");

        let e1 = table.entry(&backend, 0, 5);
        let grown = table.arena_len();
        assert!(grown > 0);
        assert_eq!(table.materialized_entries(), 1);
        let e1_again = table.entry(&backend, 0, 5);
        assert_eq!(e1, e1_again);
        assert_eq!(table.arena_len(), grown);
    }

    #[test]
    fn scratch_regions_recycle_by_length() {
        let (_backend, mut table) = build_cube_pair();
        let a = table.alloc_scratch(4);
        let b = table.alloc_scratch(4);
        let c = table.alloc_scratch(6);
        assert_eq!(table.live_scratch_routes(), 3);
        assert_eq!(a.len(), 4);
        assert_ne!(a, b, "distinct live regions never alias");

        table.fill_scratch(a, &[10, 11, 12, 13]);
        table.set_channel(b, 0, 99);
        assert_eq!(table.channels(a), &[10, 11, 12, 13]);
        assert_eq!(table.channels(b)[0], 99);

        table.release_scratch(a);
        let a2 = table.alloc_scratch(4);
        assert_eq!(a2, a, "freed region of the same length is reused");
        let d = table.alloc_scratch(6);
        assert_ne!(d, c, "length-6 region is still live, so a new one is carved");
        assert_eq!(table.live_scratch_routes(), 4);
        assert_eq!(table.peak_scratch_routes(), 4);
    }

    #[test]
    fn scratch_and_interned_entries_share_the_arena_without_aliasing() {
        let (backend, mut table) = build_cube_pair();
        let interned = table.entry(&backend, 0, 5);
        let before: Vec<_> = table.channels(interned.route).to_vec();

        // Carve, scribble over and recycle scratch regions around a second
        // interning; the interned slices must be unaffected.
        let s = table.alloc_scratch(interned.route.len());
        for i in 0..s.len() {
            table.set_channel(s, i, u32::MAX);
        }
        let interned2 = table.entry(&backend, 5, 0);
        table.release_scratch(s);
        let s2 = table.alloc_scratch(interned.route.len());
        assert_eq!(s2, s);
        table.fill_scratch(s2, &vec![7; s2.len()]);

        assert_eq!(table.channels(interned.route), &before[..]);
        assert!(!table.channels(interned2.route).contains(&u32::MAX));
        assert_eq!(table.entry(&backend, 0, 5), interned);
    }

    #[test]
    fn entries_carry_correct_metadata() {
        let (backend, mut table) = build_pair();
        let fabric = backend.as_tree().unwrap();
        let last = table.nodes() - 1;
        let inter = table.entry(&backend, 0, last);
        assert_ne!(inter.src_cluster, inter.dst_cluster);
        assert!((inter.bottleneck - fabric.t_cs()).abs() < 1e-12);
        let channels = table.channels(inter.route);
        assert!(channels.contains(&fabric.bridges().concentrate(inter.src_cluster as usize)));
        assert!(channels.contains(&fabric.bridges().dispatch(inter.dst_cluster as usize)));

        let intra = table.entry(&backend, 0, 1);
        assert_eq!(intra.src_cluster, 0);
        assert_eq!(intra.dst_cluster, 0);
        assert!((intra.bottleneck - fabric.t_cn()).abs() < 1e-12);
    }

    #[test]
    fn cube_entries_carry_correct_metadata() {
        let (backend, mut table) = build_cube_pair();
        let fabric = backend.as_cube().unwrap();
        // 0 and 3 share the dimension-0 sub-ring; 0 and 4 do not.
        let intra = table.entry(&backend, 0, 3);
        assert_eq!(intra.src_cluster, 0);
        assert_eq!(intra.dst_cluster, 0);
        let inter = table.entry(&backend, 0, 4);
        assert_eq!(inter.src_cluster, 0);
        assert_eq!(inter.dst_cluster, 1);
        assert!((inter.bottleneck - fabric.t_link()).abs() < 1e-12);
        let channels = table.channels(inter.route);
        assert_eq!(channels[0], fabric.injection(0));
        assert_eq!(*channels.last().unwrap(), fabric.ejection(4));
    }

    #[test]
    #[should_panic(expected = "to itself")]
    fn self_route_lookup_panics() {
        let (backend, mut table) = build_pair();
        table.entry(&backend, 3, 3);
    }
}
