//! Measurement-phase accounting and latency statistics.
//!
//! The paper's methodology (Section 4): generate messages continuously; discard the
//! first 10,000 delivered observations as warm-up; gather statistics over the next
//! 100,000 messages; keep generating (and simulating) a drain allowance so that the
//! measured messages all reach their destinations under ongoing background load.
//!
//! Messages are tagged at *generation* time: generation indices
//! `[warmup, warmup + measured)` are the measurement window, indices beyond that are
//! drain traffic. Latencies are recorded for measured messages only, split by traffic
//! class (intra vs inter cluster).
//!
//! Two robustness additions ride along without touching the fault-free numbers:
//!
//! * Every run folds its delivered-message stream into an order-stable **FNV-1a
//!   run digest** over `(generation index, class, delivery-time bits)` — two
//!   runs are behaviourally identical iff their digests match, which is how the
//!   goldens prove fault-free determinism end to end.
//! * Fault injection adds retransmit/drop counters, a per-attempt latency
//!   accumulator and an optional **windowed time series** of deliveries and
//!   drops, so reports show the degradation dip and recovery curve around each
//!   fault window.

use crate::message::MessageClass;
use mcnet_queueing::stats::{Histogram, RunningStats};
use serde::{Deserialize, Serialize};

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hard cap on time-series buckets; deliveries past it land in the last bucket
/// so a tiny window width cannot balloon memory.
const MAX_WINDOWS: usize = 1 << 20;

/// One delivered message, as the statistics layer sees it.
#[derive(Debug, Clone, Copy)]
pub struct Delivery {
    /// Stable generation index of the message (not the recycled slab slot).
    pub gen_id: u32,
    /// Traffic class.
    pub class: MessageClass,
    /// Tail-to-tail latency.
    pub latency: f64,
    /// Simulation time of the delivery.
    pub at: f64,
    /// Whether the message falls in the measurement window.
    pub measured: bool,
    /// Delivery attempts used (1 on the fault-free path; 1 + retransmissions
    /// under faults).
    pub attempts: u32,
}

/// One bucket of the windowed degradation time series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyWindow {
    /// Start time of the window (its width is the fault plan's `window`).
    pub start: f64,
    /// Messages delivered inside the window (all phases).
    pub delivered: u64,
    /// Messages dropped inside the window (retry budget exhausted).
    pub dropped: u64,
    /// Mean latency of the window's deliveries, when there were any.
    pub mean_latency: Option<f64>,
}

/// Internal accumulator for one time-series bucket.
#[derive(Debug, Clone, Copy, Default)]
struct WindowSlot {
    delivered: u64,
    dropped: u64,
    latency_sum: f64,
}

/// Statistics collected during one simulation run.
#[derive(Debug, Clone)]
pub struct SimStats {
    warmup: u64,
    measured_target: u64,
    generated: u64,
    delivered: u64,
    delivered_measured: u64,
    latency: RunningStats,
    intra_latency: RunningStats,
    inter_latency: RunningStats,
    histogram: Histogram,
    max_latency: f64,
    /// Retransmissions scheduled after fault aborts.
    retransmits: u64,
    /// Messages dropped after exhausting their retry budget.
    dropped: u64,
    /// Dropped messages that fell in the measurement window.
    dropped_measured: u64,
    /// Latency divided by attempts used, per measured delivery.
    attempt_latency: RunningStats,
    /// Adaptive hops/paths taken off the deterministic route (0 in
    /// deterministic mode).
    adaptive_misroutes: u64,
    /// Hops that fell back to the escape channel because every adaptive
    /// candidate was busy (0 in deterministic mode).
    escape_fallbacks: u64,
    /// FNV-1a accumulator over the delivered-message stream.
    digest: u64,
    /// Windowed delivery/drop series, enabled only for fault runs.
    windows: Option<(f64, Vec<WindowSlot>)>,
}

/// Summary of the per-class latency statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassSummary {
    /// Number of measured messages of the class.
    pub count: u64,
    /// Mean latency.
    pub mean: f64,
    /// Standard deviation of the latency.
    pub std_dev: f64,
}

/// Folds raw bytes into an FNV-1a accumulator.
#[inline]
fn fnv1a_fold(digest: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *digest ^= u64::from(b);
        *digest = digest.wrapping_mul(FNV_PRIME);
    }
}

impl SimStats {
    /// Creates the accumulator for a run with the given warm-up and measurement
    /// message counts. The histogram bin width adapts to the expected latency scale
    /// (`expected_scale` ≈ a zero-load message latency).
    pub fn new(warmup: u64, measured: u64, expected_scale: f64) -> Self {
        let bin = (expected_scale / 10.0).max(1e-9);
        SimStats {
            warmup,
            measured_target: measured,
            generated: 0,
            delivered: 0,
            delivered_measured: 0,
            latency: RunningStats::new(),
            intra_latency: RunningStats::new(),
            inter_latency: RunningStats::new(),
            histogram: Histogram::new(bin, 1000),
            max_latency: 0.0,
            retransmits: 0,
            dropped: 0,
            dropped_measured: 0,
            attempt_latency: RunningStats::new(),
            adaptive_misroutes: 0,
            escape_fallbacks: 0,
            digest: FNV_OFFSET,
            windows: None,
        }
    }

    /// Rewinds the accumulator for a fresh run with new warm-up/measurement
    /// targets and latency scale — field-for-field what [`SimStats::new`]
    /// produces, but keeping the histogram's bin storage. The windowed time
    /// series is disabled again; a fault plan re-enables it per run.
    pub fn reset(&mut self, warmup: u64, measured: u64, expected_scale: f64) {
        let bin = (expected_scale / 10.0).max(1e-9);
        self.warmup = warmup;
        self.measured_target = measured;
        self.generated = 0;
        self.delivered = 0;
        self.delivered_measured = 0;
        self.latency = RunningStats::new();
        self.intra_latency = RunningStats::new();
        self.inter_latency = RunningStats::new();
        self.histogram.reset(bin);
        self.max_latency = 0.0;
        self.retransmits = 0;
        self.dropped = 0;
        self.dropped_measured = 0;
        self.attempt_latency = RunningStats::new();
        self.adaptive_misroutes = 0;
        self.escape_fallbacks = 0;
        self.digest = FNV_OFFSET;
        self.windows = None;
    }

    /// Turns on the windowed time series with the given bucket width (fault
    /// runs only; fault-free reports keep an empty series).
    pub fn enable_windows(&mut self, width: f64) {
        debug_assert!(width > 0.0 && width.is_finite());
        self.windows = Some((width, Vec::new()));
    }

    /// Registers a newly generated message and returns `(generation index, measured?)`.
    pub fn register_generation(&mut self) -> (u64, bool) {
        let index = self.generated;
        self.generated += 1;
        let measured = index >= self.warmup && index < self.warmup + self.measured_target;
        (index, measured)
    }

    /// Total number of messages to generate in the run (warm-up + measured + drain).
    pub fn generation_target(&self, drain: u64) -> u64 {
        self.warmup + self.measured_target + drain
    }

    /// The time-series bucket covering time `at`, grown on demand.
    fn window_slot(&mut self, at: f64) -> Option<&mut WindowSlot> {
        let (width, slots) = self.windows.as_mut()?;
        let idx = ((at / *width) as usize).min(MAX_WINDOWS - 1);
        if idx >= slots.len() {
            slots.resize(idx + 1, WindowSlot::default());
        }
        Some(&mut slots[idx])
    }

    /// Records a delivery: folds it into the run digest, the time series, and —
    /// for measured messages — the latency statistics.
    pub fn record_delivery(&mut self, delivery: Delivery) {
        self.delivered += 1;
        // Order-stable run digest over every delivery, measured or not: the
        // stream (gen_id, class, delivery-time bits) pins the full behaviour.
        fnv1a_fold(&mut self.digest, &delivery.gen_id.to_le_bytes());
        fnv1a_fold(&mut self.digest, &[delivery.class as u8]);
        fnv1a_fold(&mut self.digest, &delivery.at.to_bits().to_le_bytes());
        if let Some(slot) = self.window_slot(delivery.at) {
            slot.delivered += 1;
            slot.latency_sum += delivery.latency;
        }
        if !delivery.measured {
            return;
        }
        self.delivered_measured += 1;
        self.latency.push(delivery.latency);
        self.histogram.record(delivery.latency);
        self.max_latency = self.max_latency.max(delivery.latency);
        self.attempt_latency.push(delivery.latency / f64::from(delivery.attempts.max(1)));
        match delivery.class {
            MessageClass::Intra => self.intra_latency.push(delivery.latency),
            MessageClass::Inter => self.inter_latency.push(delivery.latency),
        }
    }

    /// Records a scheduled retransmission of an aborted message.
    pub fn record_retransmit(&mut self) {
        self.retransmits += 1;
    }

    /// Records an adaptive routing decision off the deterministic path: a torus
    /// hop leaving on a non-dimension-order candidate, or a tree message whose
    /// randomized up*/down* path differs from the NCA route.
    pub fn record_misroute(&mut self) {
        self.adaptive_misroutes += 1;
    }

    /// Records a hop that fell back to the escape channel because every
    /// adaptive candidate was busy or disabled.
    pub fn record_escape_fallback(&mut self) {
        self.escape_fallbacks += 1;
    }

    /// Adaptive hops/paths taken off the deterministic route so far.
    pub fn adaptive_misroutes(&self) -> u64 {
        self.adaptive_misroutes
    }

    /// Escape-channel fallbacks taken so far.
    pub fn escape_fallbacks(&self) -> u64 {
        self.escape_fallbacks
    }

    /// Records a message dropped after exhausting its retry budget.
    pub fn record_drop(&mut self, _class: MessageClass, measured: bool, at: f64) {
        self.dropped += 1;
        if measured {
            self.dropped_measured += 1;
        }
        if let Some(slot) = self.window_slot(at) {
            slot.dropped += 1;
        }
    }

    /// Number of messages generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Number of messages delivered so far (all phases).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of measured messages delivered so far.
    pub fn delivered_measured(&self) -> u64 {
        self.delivered_measured
    }

    /// Number of retransmissions scheduled so far.
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    /// Number of messages dropped so far (all phases).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of dropped messages that fell in the measurement window.
    pub fn dropped_measured(&self) -> u64 {
        self.dropped_measured
    }

    /// Mean of latency-per-attempt over the measured deliveries. Equals the
    /// mean latency on a fault-free run (every message uses one attempt).
    pub fn mean_attempt_latency(&self) -> f64 {
        self.attempt_latency.mean()
    }

    /// The run digest folded so far: an order-stable FNV-1a hash of the
    /// delivered-message stream. Two runs with equal digests delivered the same
    /// messages at bit-identical times in the same order.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Materializes the windowed time series (empty unless
    /// [`enable_windows`](Self::enable_windows) was called).
    pub fn time_series(&self) -> Vec<LatencyWindow> {
        let Some((width, slots)) = &self.windows else { return Vec::new() };
        slots
            .iter()
            .enumerate()
            .map(|(i, slot)| LatencyWindow {
                start: i as f64 * width,
                delivered: slot.delivered,
                dropped: slot.dropped,
                mean_latency: (slot.delivered > 0)
                    .then(|| slot.latency_sum / slot.delivered as f64),
            })
            .collect()
    }

    /// Mean latency over the measured messages.
    pub fn mean_latency(&self) -> f64 {
        self.latency.mean()
    }

    /// Standard deviation of the measured latencies.
    pub fn latency_std_dev(&self) -> f64 {
        self.latency.std_dev()
    }

    /// Standard error of the mean latency.
    pub fn latency_std_error(&self) -> f64 {
        self.latency.std_error()
    }

    /// Largest measured latency.
    pub fn max_latency(&self) -> f64 {
        self.max_latency
    }

    /// Approximate latency quantile from the histogram.
    pub fn latency_quantile(&self, q: f64) -> Option<f64> {
        self.histogram.quantile(q)
    }

    /// Summary for one traffic class.
    pub fn class_summary(&self, class: MessageClass) -> ClassSummary {
        let s = match class {
            MessageClass::Intra => &self.intra_latency,
            MessageClass::Inter => &self.inter_latency,
        };
        ClassSummary { count: s.count(), mean: s.mean(), std_dev: s.std_dev() }
    }

    /// The underlying running statistics of all measured latencies.
    pub fn latency_stats(&self) -> &RunningStats {
        &self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delivery(latency: f64, class: MessageClass, measured: bool) -> Delivery {
        Delivery { gen_id: 0, class, latency, at: latency, measured, attempts: 1 }
    }

    #[test]
    fn generation_window_is_tagged_correctly() {
        let mut s = SimStats::new(2, 3, 10.0);
        let tags: Vec<(u64, bool)> = (0..7).map(|_| s.register_generation()).collect();
        let expected = [false, false, true, true, true, false, false];
        for (i, &(idx, measured)) in tags.iter().enumerate() {
            assert_eq!(idx, i as u64);
            assert_eq!(measured, expected[i], "index {i}");
        }
        assert_eq!(s.generation_target(2), 7);
        assert_eq!(s.generated(), 7);
    }

    #[test]
    fn only_measured_messages_enter_statistics() {
        let mut s = SimStats::new(1, 2, 10.0);
        s.record_delivery(delivery(5.0, MessageClass::Intra, false));
        s.record_delivery(delivery(10.0, MessageClass::Intra, true));
        s.record_delivery(delivery(20.0, MessageClass::Inter, true));
        assert_eq!(s.delivered(), 3);
        assert_eq!(s.delivered_measured(), 2);
        assert!((s.mean_latency() - 15.0).abs() < 1e-12);
        assert_eq!(s.max_latency(), 20.0);
        assert_eq!(s.class_summary(MessageClass::Intra).count, 1);
        assert_eq!(s.class_summary(MessageClass::Inter).count, 1);
        assert!((s.class_summary(MessageClass::Inter).mean - 20.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_and_errors_are_available() {
        let mut s = SimStats::new(0, 1000, 100.0);
        for i in 0..1000 {
            s.record_delivery(delivery(i as f64, MessageClass::Inter, true));
        }
        assert!(s.latency_quantile(0.5).unwrap() >= 490.0);
        assert!(s.latency_std_error() > 0.0);
        assert!(s.latency_std_dev() > 0.0);
        assert_eq!(s.latency_stats().count(), 1000);
    }

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let d1 = Delivery {
            gen_id: 1,
            class: MessageClass::Intra,
            latency: 2.0,
            at: 10.0,
            measured: true,
            attempts: 1,
        };
        let d2 = Delivery { gen_id: 2, at: 12.0, ..d1 };

        let mut a = SimStats::new(0, 10, 10.0);
        a.record_delivery(d1);
        a.record_delivery(d2);
        let mut b = SimStats::new(0, 10, 10.0);
        b.record_delivery(d1);
        b.record_delivery(d2);
        assert_eq!(a.digest(), b.digest(), "identical streams fold to identical digests");

        let mut swapped = SimStats::new(0, 10, 10.0);
        swapped.record_delivery(d2);
        swapped.record_delivery(d1);
        assert_ne!(a.digest(), swapped.digest(), "digest is order-sensitive");

        let mut shifted = SimStats::new(0, 10, 10.0);
        shifted.record_delivery(d1);
        shifted.record_delivery(Delivery { at: 12.0 + 1e-12, ..d2 });
        assert_ne!(a.digest(), shifted.digest(), "digest sees single-ULP-scale drift");

        // Empty runs share the FNV offset basis.
        assert_eq!(SimStats::new(0, 1, 1.0).digest(), SimStats::new(5, 9, 2.0).digest());
    }

    #[test]
    fn drops_and_retransmits_are_counted() {
        let mut s = SimStats::new(0, 10, 10.0);
        s.record_retransmit();
        s.record_retransmit();
        s.record_drop(MessageClass::Inter, true, 5.0);
        s.record_drop(MessageClass::Intra, false, 6.0);
        assert_eq!(s.retransmits(), 2);
        assert_eq!(s.dropped(), 2);
        assert_eq!(s.dropped_measured(), 1);
        // Attempt latency averages latency / attempts over measured deliveries.
        s.record_delivery(Delivery {
            gen_id: 0,
            class: MessageClass::Intra,
            latency: 12.0,
            at: 12.0,
            measured: true,
            attempts: 3,
        });
        assert!((s.mean_attempt_latency() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn time_series_buckets_deliveries_and_drops() {
        let mut s = SimStats::new(0, 10, 10.0);
        assert!(s.time_series().is_empty(), "fault-free runs keep an empty series");
        s.enable_windows(10.0);
        s.record_delivery(delivery(2.0, MessageClass::Intra, true));
        s.record_delivery(delivery(4.0, MessageClass::Intra, true));
        s.record_drop(MessageClass::Inter, true, 15.0);
        s.record_delivery(Delivery {
            gen_id: 3,
            class: MessageClass::Inter,
            latency: 6.0,
            at: 25.0,
            measured: false,
            attempts: 2,
        });
        let series = s.time_series();
        assert_eq!(series.len(), 3);
        assert_eq!(series[0].delivered, 2);
        assert_eq!(series[0].dropped, 0);
        assert!((series[0].mean_latency.unwrap() - 3.0).abs() < 1e-12);
        assert_eq!(
            series[1],
            LatencyWindow { start: 10.0, delivered: 0, dropped: 1, mean_latency: None }
        );
        assert_eq!(series[2].delivered, 1);
        assert_eq!(series[2].start, 20.0);
    }
}
