//! Measurement-phase accounting and latency statistics.
//!
//! The paper's methodology (Section 4): generate messages continuously; discard the
//! first 10,000 delivered observations as warm-up; gather statistics over the next
//! 100,000 messages; keep generating (and simulating) a drain allowance so that the
//! measured messages all reach their destinations under ongoing background load.
//!
//! Messages are tagged at *generation* time: generation indices
//! `[warmup, warmup + measured)` are the measurement window, indices beyond that are
//! drain traffic. Latencies are recorded for measured messages only, split by traffic
//! class (intra vs inter cluster).

use crate::message::MessageClass;
use mcnet_queueing::stats::{Histogram, RunningStats};
use serde::{Deserialize, Serialize};

/// Statistics collected during one simulation run.
#[derive(Debug, Clone)]
pub struct SimStats {
    warmup: u64,
    measured_target: u64,
    generated: u64,
    delivered: u64,
    delivered_measured: u64,
    latency: RunningStats,
    intra_latency: RunningStats,
    inter_latency: RunningStats,
    histogram: Histogram,
    max_latency: f64,
}

/// Summary of the per-class latency statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassSummary {
    /// Number of measured messages of the class.
    pub count: u64,
    /// Mean latency.
    pub mean: f64,
    /// Standard deviation of the latency.
    pub std_dev: f64,
}

impl SimStats {
    /// Creates the accumulator for a run with the given warm-up and measurement
    /// message counts. The histogram bin width adapts to the expected latency scale
    /// (`expected_scale` ≈ a zero-load message latency).
    pub fn new(warmup: u64, measured: u64, expected_scale: f64) -> Self {
        let bin = (expected_scale / 10.0).max(1e-9);
        SimStats {
            warmup,
            measured_target: measured,
            generated: 0,
            delivered: 0,
            delivered_measured: 0,
            latency: RunningStats::new(),
            intra_latency: RunningStats::new(),
            inter_latency: RunningStats::new(),
            histogram: Histogram::new(bin, 1000),
            max_latency: 0.0,
        }
    }

    /// Registers a newly generated message and returns `(generation index, measured?)`.
    pub fn register_generation(&mut self) -> (u64, bool) {
        let index = self.generated;
        self.generated += 1;
        let measured = index >= self.warmup && index < self.warmup + self.measured_target;
        (index, measured)
    }

    /// Total number of messages to generate in the run (warm-up + measured + drain).
    pub fn generation_target(&self, drain: u64) -> u64 {
        self.warmup + self.measured_target + drain
    }

    /// Records a delivery.
    pub fn record_delivery(&mut self, latency: f64, class: MessageClass, measured: bool) {
        self.delivered += 1;
        if !measured {
            return;
        }
        self.delivered_measured += 1;
        self.latency.push(latency);
        self.histogram.record(latency);
        self.max_latency = self.max_latency.max(latency);
        match class {
            MessageClass::Intra => self.intra_latency.push(latency),
            MessageClass::Inter => self.inter_latency.push(latency),
        }
    }

    /// Number of messages generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Number of messages delivered so far (all phases).
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Number of measured messages delivered so far.
    pub fn delivered_measured(&self) -> u64 {
        self.delivered_measured
    }

    /// Mean latency over the measured messages.
    pub fn mean_latency(&self) -> f64 {
        self.latency.mean()
    }

    /// Standard deviation of the measured latencies.
    pub fn latency_std_dev(&self) -> f64 {
        self.latency.std_dev()
    }

    /// Standard error of the mean latency.
    pub fn latency_std_error(&self) -> f64 {
        self.latency.std_error()
    }

    /// Largest measured latency.
    pub fn max_latency(&self) -> f64 {
        self.max_latency
    }

    /// Approximate latency quantile from the histogram.
    pub fn latency_quantile(&self, q: f64) -> Option<f64> {
        self.histogram.quantile(q)
    }

    /// Summary for one traffic class.
    pub fn class_summary(&self, class: MessageClass) -> ClassSummary {
        let s = match class {
            MessageClass::Intra => &self.intra_latency,
            MessageClass::Inter => &self.inter_latency,
        };
        ClassSummary { count: s.count(), mean: s.mean(), std_dev: s.std_dev() }
    }

    /// The underlying running statistics of all measured latencies.
    pub fn latency_stats(&self) -> &RunningStats {
        &self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_window_is_tagged_correctly() {
        let mut s = SimStats::new(2, 3, 10.0);
        let tags: Vec<(u64, bool)> = (0..7).map(|_| s.register_generation()).collect();
        let expected = [false, false, true, true, true, false, false];
        for (i, &(idx, measured)) in tags.iter().enumerate() {
            assert_eq!(idx, i as u64);
            assert_eq!(measured, expected[i], "index {i}");
        }
        assert_eq!(s.generation_target(2), 7);
        assert_eq!(s.generated(), 7);
    }

    #[test]
    fn only_measured_messages_enter_statistics() {
        let mut s = SimStats::new(1, 2, 10.0);
        s.record_delivery(5.0, MessageClass::Intra, false);
        s.record_delivery(10.0, MessageClass::Intra, true);
        s.record_delivery(20.0, MessageClass::Inter, true);
        assert_eq!(s.delivered(), 3);
        assert_eq!(s.delivered_measured(), 2);
        assert!((s.mean_latency() - 15.0).abs() < 1e-12);
        assert_eq!(s.max_latency(), 20.0);
        assert_eq!(s.class_summary(MessageClass::Intra).count, 1);
        assert_eq!(s.class_summary(MessageClass::Inter).count, 1);
        assert!((s.class_summary(MessageClass::Inter).mean - 20.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_and_errors_are_available() {
        let mut s = SimStats::new(0, 1000, 100.0);
        for i in 0..1000 {
            s.record_delivery(i as f64, MessageClass::Inter, true);
        }
        assert!(s.latency_quantile(0.5).unwrap() >= 490.0);
        assert!(s.latency_std_error() > 0.0);
        assert!(s.latency_std_dev() > 0.0);
        assert_eq!(s.latency_stats().count(), 1000);
    }
}
