//! The declarative scenario layer: one entry point for every simulation run.
//!
//! Historically each fabric backend and each driver shape multiplied the
//! entry-point surface (`run_simulation` vs `run_torus_simulation`,
//! `run_replications` vs `run_torus_replications`, plus a hand-rolled sweep
//! loop in every experiment bin). A [`Scenario`] collapses that N×M×K space
//! into data: a fabric ([`Fabric::Tree`] or [`Fabric::Torus`]), a
//! [`TrafficConfig`], a [`SimConfig`] and a replication count, composed through
//! [`ScenarioBuilder`] and executed through [`Scenario::run`],
//! [`Scenario::replicate`] and [`Scenario::sweep`]. The outputs and the
//! seed/aggregation contracts the legacy `run_*` functions had are preserved
//! **bit-identically**, pinned against frozen golden digests in
//! `tests/scenario_api.rs`; the wrappers themselves are gone.
//!
//! [`ScenarioSpec`] is the serializable plain-data mirror: fabric geometry
//! parameters, traffic pattern, protocol preset, seed and replication count,
//! read from and written to JSON through the offline [`crate::json`] layer
//! (`specs/*.json` at the workspace root holds exemplars; the `scenario` bin in
//! `mcnet-experiments` executes any of them).
//!
//! ```
//! use mcnet_sim::scenario::Scenario;
//! use mcnet_system::{organizations, TrafficConfig};
//! use mcnet_sim::SimConfig;
//!
//! let report = Scenario::builder()
//!     .tree(organizations::small_test_org())
//!     .traffic(TrafficConfig::uniform(8, 256.0, 1e-3).unwrap())
//!     .config(SimConfig::quick(42))
//!     .build()
//!     .unwrap()
//!     .run()
//!     .unwrap();
//! assert!(report.mean_latency > 0.0);
//! ```

use crate::engine::Simulation;
use crate::fault::FaultPlan;
use crate::json::{object, Json};
use crate::policy::RoutingPolicy;
use crate::runner::{replicate_with, report_from, ReplicatedReport, SimConfig, SimReport};
use crate::traffic_source::TrafficSourceSpec;
use crate::{Result, SimError};
use mcnet_model::{ModelBackend, ModelOptions, ModelReport};
use mcnet_system::sweep::materialize_rates;
use mcnet_system::{organizations, MultiClusterSystem, TorusSystem, TrafficConfig, TrafficPattern};

/// A network fabric a scenario runs over — the configuration-layer counterpart
/// of the engine's `FabricBackend`.
#[derive(Debug, Clone, PartialEq)]
pub enum Fabric {
    /// The paper's heterogeneous multi-cluster m-port n-tree fabric.
    Tree(MultiClusterSystem),
    /// A k-ary n-cube (torus) fabric.
    Torus(TorusSystem),
}

impl Fabric {
    /// Total number of processing nodes.
    pub fn total_nodes(&self) -> usize {
        match self {
            Fabric::Tree(s) => s.total_nodes(),
            Fabric::Torus(t) => t.total_nodes(),
        }
    }

    /// A short human-readable summary of the fabric.
    pub fn summary(&self) -> String {
        match self {
            Fabric::Tree(s) => s.summary(),
            Fabric::Torus(t) => t.summary(),
        }
    }
}

/// A fully-specified simulation scenario: fabric + traffic + measurement
/// protocol + replication plan. Build one with [`Scenario::builder`] or from a
/// serialized [`ScenarioSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    name: String,
    fabric: Fabric,
    traffic: TrafficConfig,
    source: TrafficSourceSpec,
    config: SimConfig,
    replications: usize,
    faults: Option<FaultPlan>,
    routing: RoutingPolicy,
}

impl Scenario {
    /// Starts composing a scenario.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::default()
    }

    /// The scenario's name (used to key benchmark and report entries).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The fabric the scenario runs over.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// The traffic configuration.
    pub fn traffic(&self) -> &TrafficConfig {
        &self.traffic
    }

    /// The arrival-process shape every node draws from
    /// ([`TrafficSourceSpec::Poisson`] unless the builder or spec said
    /// otherwise).
    pub fn source(&self) -> &TrafficSourceSpec {
        &self.source
    }

    /// The measurement protocol.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The planned replication count ([`Scenario::execute`] honours it;
    /// [`Scenario::replicate`] takes an explicit override).
    pub fn replications(&self) -> usize {
        self.replications
    }

    /// The fault-injection plan, if any. Every run and replication of the
    /// scenario applies it; the analytical mode ([`Scenario::evaluate`])
    /// ignores it — the model has no fault semantics.
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// The routing policy every run of the scenario uses
    /// ([`RoutingPolicy::Deterministic`] unless the builder or spec said
    /// otherwise).
    pub fn routing(&self) -> RoutingPolicy {
        self.routing
    }

    /// Returns the scenario re-seeded at `seed`, everything else unchanged.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Runs the scenario once. Bit-identical to the legacy
    /// `run_simulation` / `run_torus_simulation` at the same inputs.
    pub fn run(&self) -> Result<SimReport> {
        self.run_point(&self.traffic, &self.config)
    }

    /// Runs `n` independent replications (seeds `seed`, `seed+1`, …) on the
    /// bounded worker pool and aggregates them in replication order —
    /// bit-identical to the legacy `run_replications` /
    /// `run_torus_replications` contract.
    pub fn replicate(&self, n: usize) -> Result<ReplicatedReport> {
        replicate_with(&self.config, n, |slot, cfg| {
            self.run_point_reusing(slot, &self.traffic, &cfg)
        })
    }

    /// Runs the scenario as planned: [`Scenario::run`] when `replications` is
    /// one, [`Scenario::replicate`] otherwise.
    pub fn execute(&self) -> Result<ScenarioOutcome> {
        if self.replications == 1 {
            Ok(ScenarioOutcome::Single(Box::new(self.run()?)))
        } else {
            Ok(ScenarioOutcome::Replicated(self.replicate(self.replications)?))
        }
    }

    /// [`Scenario::execute`] against a caller-held engine cache, for drivers
    /// (campaigns) that are themselves already fanned over the worker pool:
    /// replications run *sequentially* on the calling thread — nesting another
    /// `parallel_map` would multiply thread counts — and every run resets the
    /// cached engine in place instead of allocating a fresh one.
    ///
    /// Bit-identical to [`Scenario::execute`]: replication `r` uses seed
    /// `seed + r` and the aggregate is computed in replication order, exactly
    /// the [`Scenario::replicate`] contract. The slot must only ever be fed
    /// scenarios of compatible shape — [`Simulation::reset`] checks message
    /// geometry but **not** fabric identity, so callers switching fabrics or
    /// routing policies between runs must clear (or key) the slot themselves.
    pub fn execute_reusing(&self, slot: &mut Option<Simulation>) -> Result<ScenarioOutcome> {
        if self.replications == 1 {
            return Ok(ScenarioOutcome::Single(Box::new(self.run_point_reusing(
                slot,
                &self.traffic,
                &self.config,
            )?)));
        }
        let mut reports = Vec::with_capacity(self.replications);
        for r in 0..self.replications {
            let config = SimConfig { seed: self.config.seed.wrapping_add(r as u64), ..self.config };
            reports.push(self.run_point_reusing(slot, &self.traffic, &config)?);
        }
        Ok(ScenarioOutcome::Replicated(crate::runner::aggregate_replications(reports)))
    }

    /// Sweeps the generation rate over `rates`, one single run per point.
    ///
    /// The points are independent, so they fan over the bounded worker pool;
    /// point `i` uses seed `seed + i` and results aggregate in sweep order, so
    /// the output is bit-identical regardless of thread interleaving (the same
    /// contract the figure sweeps have always had). The rate grid is
    /// materialized through [`mcnet_system::sweep::materialize_rates`], keeping
    /// the scenario's geometry and destination pattern at every point.
    pub fn sweep(&self, rates: &[f64]) -> Result<Vec<SimReport>> {
        self.sweep_outcomes(rates)?.into_iter().collect()
    }

    /// Like [`Scenario::sweep`], but returns each point's own `Result` so
    /// callers can treat deep saturation ([`SimError::EventBudgetExhausted`])
    /// as a missing point instead of failing the whole sweep. The outer
    /// `Result` only reports invalid rate grids
    /// ([`SimError::InvalidSpec`] for an empty, non-finite or non-positive
    /// grid — a silent empty report used to be the failure mode).
    pub fn sweep_outcomes(&self, rates: &[f64]) -> Result<Vec<Result<SimReport>>> {
        let configs = self.materialize_grid(rates)?;
        Ok(mcnet_system::parallel::parallel_map_with(
            configs,
            || None,
            |slot, i, traffic| {
                let config =
                    SimConfig { seed: self.config.seed.wrapping_add(i as u64), ..self.config };
                self.run_point_reusing(slot, &traffic, &config)
            },
        ))
    }

    /// Sweeps the generation rate over `rates` with `n` replications per point.
    ///
    /// Points run sequentially on purpose: each replication set already fans
    /// over the bounded worker pool, and nesting `parallel_map` would multiply
    /// thread counts up to workers² instead of sharing one pool. Every point
    /// replicates from the same base seed (seeds `seed … seed+n-1`), the
    /// backend-comparison contract.
    ///
    /// One engine pool is threaded through the *whole* sweep: the per-worker
    /// engines warmed by the first point are reset — not reallocated — for
    /// every following point, so a sweep of `P` points × `n` replications on
    /// `W` workers builds exactly `min(W, n)` engines, total.
    pub fn sweep_replicated(
        &self,
        rates: &[f64],
        n: usize,
    ) -> Result<Vec<Result<ReplicatedReport>>> {
        let configs = self.materialize_grid(rates)?;
        let mut slots: Vec<Option<Simulation>> = Vec::new();
        Ok(configs
            .into_iter()
            .map(|traffic| {
                crate::runner::replicate_pooled(&self.config, n, &mut slots, |slot, cfg| {
                    self.run_point_reusing(slot, &traffic, &cfg)
                })
            })
            .collect())
    }

    /// The analytical model bound to this scenario's fabric — the model-side
    /// counterpart of the engine's `FabricBackend`, built from the very same
    /// fabric description.
    pub fn model_backend(&self) -> ModelBackend {
        match &self.fabric {
            Fabric::Tree(system) => ModelBackend::Tree(system.clone()),
            Fabric::Torus(torus) => ModelBackend::Torus(torus.clone()),
        }
    }

    /// Evaluates the scenario **analytically**: the same fabric and traffic
    /// point, sent through `mcnet-model` instead of the discrete-event engine.
    /// One scenario (or serialized spec) thereby drives model *or* simulation;
    /// the `scenario` bin's `--model` flag and the `model_vs_sim` validation
    /// sweep in `mcnet-experiments` are the spec-driven faces of this method.
    ///
    /// Saturation surfaces as the typed [`SimError::ModelSaturated`] — the
    /// analytical counterpart of a simulation exhausting its event budget.
    pub fn evaluate(&self) -> Result<ModelReport> {
        self.evaluate_with_options(ModelOptions::default())
    }

    /// [`Scenario::evaluate`] with explicit model-interpretation options.
    /// The scenario's routing policy overrides the options' torus-routing
    /// knob, so an adaptive spec evaluates through the adaptive-load model
    /// without the caller restating the policy.
    pub fn evaluate_with_options(&self, options: ModelOptions) -> Result<ModelReport> {
        Ok(self.model_backend().evaluate(&self.model_traffic()?, self.model_options(options))?)
    }

    /// The traffic point the analytical model evaluates: the configured point
    /// with the generation rate replaced by the traffic source's long-run
    /// **effective rate** (see [`TrafficSourceSpec::effective_rate`]). The
    /// model itself is Poisson-only, so a bursty or trace-driven source is
    /// approximated by its mean load — the `model_vs_sim` burstiness table in
    /// `mcnet-experiments` quantifies how far that approximation drifts. A
    /// Poisson source returns the configured traffic untouched, keeping the
    /// analytical path bit-identical to the pre-source-subsystem layer.
    fn model_traffic(&self) -> Result<TrafficConfig> {
        let rate =
            self.source.effective_rate(self.traffic.generation_rate, self.fabric.total_nodes())?;
        if rate == self.traffic.generation_rate {
            return Ok(self.traffic);
        }
        Ok(self.traffic.with_rate(rate)?)
    }

    /// The rate-axis scale factor between the configured and the effective
    /// rate: callers sweep and search on the *configured* axis, the model
    /// evaluates on the *effective* one. `1.0` for Poisson and ON-OFF sources.
    fn model_rate_scale(&self) -> Result<f64> {
        let rate = self.traffic.generation_rate;
        Ok(self.source.effective_rate(rate, self.fabric.total_nodes())? / rate)
    }

    /// Maps the scenario's routing policy onto the analytical model's knobs.
    /// Randomized up*/down* routing needs no mapping: it redistributes load
    /// across symmetric channels of the same networks, which the tree model's
    /// network-mean rates already describe.
    fn model_options(&self, base: ModelOptions) -> ModelOptions {
        match self.routing {
            RoutingPolicy::AdaptiveTorus { adaptive_vcs } => {
                base.with_adaptive_torus(adaptive_vcs as usize)
            }
            RoutingPolicy::Deterministic | RoutingPolicy::RandomizedUpDown => base,
        }
    }

    /// The analytical saturation rate of the scenario's fabric and traffic
    /// under the scenario's routing policy: adaptive specs probe the
    /// adaptive-load model, whose extra virtual-channel capacity saturates
    /// later than dimension order, so validation sweeps scale their rate grid
    /// to the policy actually being simulated.
    pub fn find_saturation_rate(&self, tolerance: f64) -> Result<f64> {
        let saturation = self.model_backend().find_saturation_rate(
            &self.traffic,
            self.model_options(ModelOptions::default()),
            tolerance,
        )?;
        // The search runs on the model's (effective-rate) axis; report the
        // *configured* rate whose effective load saturates, so sweeps built
        // from fractions of this value stay on the caller's axis. The scale
        // is 1.0 for Poisson and ON-OFF sources, keeping them bit-identical.
        Ok(saturation / self.model_rate_scale()?)
    }

    /// Evaluates the model over a rate grid (the analytical counterpart of
    /// [`Scenario::sweep_outcomes`]): per-point results so saturated points can
    /// be treated as missing, an [`SimError::InvalidSpec`] outer error for a
    /// degenerate grid.
    pub fn evaluate_sweep(&self, rates: &[f64]) -> Result<Vec<Result<ModelReport>>> {
        // Validates the grid exactly as the simulation sweep does.
        self.materialize_grid(rates)?;
        // Batched evaluation: the load/saturation structure is built once and
        // every rate point rebinds over it — bit-identical to a pointwise
        // `evaluate` loop (see `evaluate_batch`), several times faster. The
        // grid is mapped onto the model's effective-rate axis first; the scale
        // is 1.0 (no mapping) for Poisson and ON-OFF sources.
        let scale = self.model_rate_scale()?;
        let effective: Vec<f64>;
        let model_rates = if scale == 1.0 {
            rates
        } else {
            effective = rates.iter().map(|r| r * scale).collect();
            &effective
        };
        let reports = self.model_backend().evaluate_batch(
            &self.traffic,
            model_rates,
            self.model_options(ModelOptions::default()),
        )?;
        Ok(reports.into_iter().map(|r| r.map_err(SimError::from)).collect())
    }

    /// Validates and materializes a sweep's rate grid. An empty grid used to
    /// produce an empty report with no diagnostic; it is now a typed spec
    /// error, as are non-finite and non-positive rates.
    fn materialize_grid(&self, rates: &[f64]) -> Result<Vec<TrafficConfig>> {
        if rates.is_empty() {
            return Err(SimError::InvalidSpec {
                reason: "sweep rate grid is empty (a sweep needs at least one rate)".into(),
            });
        }
        if let Some(bad) = rates.iter().find(|r| !r.is_finite() || **r <= 0.0) {
            return Err(SimError::InvalidSpec {
                reason: format!("sweep rate grid contains a non-positive or non-finite rate {bad}"),
            });
        }
        materialize_rates(&self.traffic, rates).map_err(|e| SimError::InvalidSpec {
            reason: format!("sweep rate grid could not be materialized: {e}"),
        })
    }

    /// Builds the engine for one run — the fabric dispatch shared by the
    /// fresh and the engine-reusing run paths.
    fn build_sim(&self, traffic: &TrafficConfig, config: &SimConfig) -> Result<Simulation> {
        let faults = self.faults.as_ref();
        match &self.fabric {
            Fabric::Tree(system) => {
                Simulation::new_full(system, traffic, config, faults, self.routing, &self.source)
            }
            Fabric::Torus(torus) => Simulation::new_torus_full(
                torus,
                traffic,
                config,
                faults,
                self.routing,
                &self.source,
            ),
        }
    }

    /// One simulation run at an explicit traffic point and protocol — the
    /// primitive every public entry point reduces to.
    fn run_point(&self, traffic: &TrafficConfig, config: &SimConfig) -> Result<SimReport> {
        let mut sim = self.build_sim(traffic, config)?;
        report_from(&mut sim, traffic, config)
    }

    /// [`Scenario::run_point`] against a per-worker engine cache: a cached
    /// engine is [`reset`](Simulation::reset) in place (reusing all of its
    /// grown allocations); a missing or incompatible one is built fresh and
    /// cached. Bit-identical to `run_point` by the reset contract — the cache
    /// only changes how much the run allocates. The slot must only ever be
    /// fed runs of this same scenario (same fabric and routing policy); sweep
    /// and replication workers hold one slot per thread for exactly that use.
    pub(crate) fn run_point_reusing(
        &self,
        slot: &mut Option<Simulation>,
        traffic: &TrafficConfig,
        config: &SimConfig,
    ) -> Result<SimReport> {
        if let Some(sim) = slot {
            if sim.reset(traffic, &self.source, config, self.faults.as_ref()).is_ok() {
                let report = report_from(sim, traffic, config);
                if report.is_err() {
                    // A run that died mid-flight (exhausted event budget)
                    // leaves live in-flight state; drop the engine rather
                    // than reset around it.
                    *slot = None;
                }
                return report;
            }
            // Incompatible (e.g. a changed message geometry): rebuild below.
            *slot = None;
        }
        let mut sim = self.build_sim(traffic, config)?;
        let report = report_from(&mut sim, traffic, config)?;
        *slot = Some(sim);
        Ok(report)
    }
}

/// What [`Scenario::execute`] produced: a single run or a replicated aggregate.
/// The single report is boxed: `SimReport` carries the degradation time
/// series, so inline it would dwarf the replicated variant.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioOutcome {
    /// One simulation run (`replications == 1`).
    Single(Box<SimReport>),
    /// An aggregate over independent replications.
    Replicated(ReplicatedReport),
}

impl ScenarioOutcome {
    /// The headline mean latency of the outcome.
    pub fn mean_latency(&self) -> f64 {
        match self {
            ScenarioOutcome::Single(r) => r.mean_latency,
            ScenarioOutcome::Replicated(r) => r.mean_latency,
        }
    }

    /// Renders the outcome as a JSON tree (every report field included).
    pub fn to_json(&self) -> Json {
        match self {
            ScenarioOutcome::Single(r) => {
                object([("kind", Json::String("single".into())), ("report", sim_report_json(r))])
            }
            ScenarioOutcome::Replicated(r) => object([
                ("kind", Json::String("replicated".into())),
                ("report", replicated_report_json(r)),
            ]),
        }
    }
}

/// Composable builder for [`Scenario`]. Fabric and traffic are mandatory; the
/// protocol defaults to [`SimConfig::quick`] with seed 0 and the replication
/// plan to a single run.
#[derive(Debug, Clone, Default)]
pub struct ScenarioBuilder {
    name: Option<String>,
    fabric: Option<Fabric>,
    traffic: Option<TrafficConfig>,
    source: Option<TrafficSourceSpec>,
    config: Option<SimConfig>,
    replications: Option<usize>,
    faults: Option<FaultPlan>,
    routing: Option<RoutingPolicy>,
}

impl ScenarioBuilder {
    /// Names the scenario (defaults to the fabric summary).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Runs over the given fabric.
    pub fn fabric(mut self, fabric: Fabric) -> Self {
        self.fabric = Some(fabric);
        self
    }

    /// Runs over a multi-cluster tree fabric.
    pub fn tree(self, system: MultiClusterSystem) -> Self {
        self.fabric(Fabric::Tree(system))
    }

    /// Runs over a k-ary n-cube (torus) fabric.
    pub fn torus(self, torus: TorusSystem) -> Self {
        self.fabric(Fabric::Torus(torus))
    }

    /// Sets the traffic configuration.
    pub fn traffic(mut self, traffic: TrafficConfig) -> Self {
        self.traffic = Some(traffic);
        self
    }

    /// Sets the traffic-source shape (defaults to
    /// [`TrafficSourceSpec::Poisson`], the paper's arrival process). The spec
    /// is validated against the fabric at [`build`](Self::build).
    pub fn source(mut self, source: TrafficSourceSpec) -> Self {
        self.source = Some(source);
        self
    }

    /// Sets the measurement protocol.
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Sets the planned replication count (≥ 1).
    pub fn replications(mut self, replications: usize) -> Self {
        self.replications = Some(replications);
        self
    }

    /// Injects a fault plan: timed link/switch outages with degraded-mode
    /// delivery (abort, backoff retransmission, bounded retries). The plan is
    /// validated against the fabric at [`build`](Self::build).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Sets the routing policy (defaults to [`RoutingPolicy::Deterministic`]).
    /// The policy must match the fabric — [`RoutingPolicy::AdaptiveTorus`]
    /// needs a torus, [`RoutingPolicy::RandomizedUpDown`] a tree — which is
    /// checked at [`build`](Self::build).
    pub fn routing(mut self, policy: RoutingPolicy) -> Self {
        self.routing = Some(policy);
        self
    }

    /// Validates and assembles the scenario.
    pub fn build(self) -> Result<Scenario> {
        let fabric = self.fabric.ok_or_else(|| SimError::InvalidConfiguration {
            reason: "a scenario needs a fabric (tree or torus)".into(),
        })?;
        let traffic = self.traffic.ok_or_else(|| SimError::InvalidConfiguration {
            reason: "a scenario needs a traffic configuration".into(),
        })?;
        let config = self.config.unwrap_or_else(|| SimConfig::quick(0));
        let replications = self.replications.unwrap_or(1);
        let name = self.name.unwrap_or_else(|| fabric.summary());
        let routing = self.routing.unwrap_or_default();
        let source = self.source.unwrap_or_default();
        let scenario = Scenario {
            name,
            fabric,
            traffic,
            source,
            config,
            replications,
            faults: self.faults,
            routing,
        };
        scenario.validate()?;
        Ok(scenario)
    }
}

impl Scenario {
    /// Validates the assembled scenario: traffic and protocol parameters,
    /// a strictly positive generation rate (a rate of zero generates no
    /// messages, so the measurement phase could never complete), at least one
    /// replication, and a hot-spot node that exists on the fabric.
    fn validate(&self) -> Result<()> {
        self.traffic.validate()?;
        self.config.validate()?;
        if self.traffic.generation_rate <= 0.0 {
            return Err(SimError::InvalidConfiguration {
                reason: "scenario generation_rate must be positive".into(),
            });
        }
        if self.replications == 0 {
            return Err(SimError::InvalidConfiguration {
                reason: "scenario replications must be at least 1".into(),
            });
        }
        if let TrafficPattern::Hotspot { hotspot, .. } = self.traffic.pattern {
            if hotspot >= self.fabric.total_nodes() {
                return Err(SimError::InvalidConfiguration {
                    reason: format!(
                        "hotspot node {hotspot} is out of range for a fabric of {} nodes",
                        self.fabric.total_nodes()
                    ),
                });
            }
        }
        self.source.validate()?;
        if let TrafficSourceSpec::HeterogeneousRates { multipliers, .. } = &self.source {
            if multipliers.len() != self.fabric.total_nodes() {
                return Err(SimError::InvalidConfiguration {
                    reason: format!(
                        "heterogeneous source has {} multipliers for a fabric of {} nodes",
                        multipliers.len(),
                        self.fabric.total_nodes()
                    ),
                });
            }
        }
        if let Some(plan) = &self.faults {
            plan.validate()?;
            plan.validate_against(&self.fabric)?;
        }
        self.routing.validate()?;
        match (&self.routing, &self.fabric) {
            (RoutingPolicy::AdaptiveTorus { .. }, Fabric::Tree(_)) => {
                return Err(SimError::InvalidConfiguration {
                    reason: "adaptive_torus routing needs a torus fabric".into(),
                });
            }
            (RoutingPolicy::RandomizedUpDown, Fabric::Torus(_)) => {
                return Err(SimError::InvalidConfiguration {
                    reason: "randomized_updown routing needs a tree fabric".into(),
                });
            }
            _ => {}
        }
        Ok(())
    }
}

/// The measurement-protocol presets a serialized spec can name (the explicit
/// message counts stay an in-code concern of [`SimConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// [`SimConfig::quick`]: 200/2k/200 messages.
    Quick,
    /// [`SimConfig::reduced`]: 1k/10k/1k messages.
    Reduced,
    /// [`SimConfig::paper`]: the paper's 10k/100k/10k protocol.
    Paper,
}

impl Protocol {
    /// The corresponding simulation protocol.
    pub fn sim_config(self, seed: u64) -> SimConfig {
        match self {
            Protocol::Quick => SimConfig::quick(seed),
            Protocol::Reduced => SimConfig::reduced(seed),
            Protocol::Paper => SimConfig::paper(seed),
        }
    }

    /// The spec-file spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Protocol::Quick => "quick",
            Protocol::Reduced => "reduced",
            Protocol::Paper => "paper",
        }
    }
}

impl std::str::FromStr for Protocol {
    type Err = SimError;

    /// Parses the spec-file spelling (`"quick"`, `"reduced"`, `"paper"`).
    fn from_str(s: &str) -> Result<Self> {
        match s {
            "quick" => Ok(Protocol::Quick),
            "reduced" => Ok(Protocol::Reduced),
            "paper" => Ok(Protocol::Paper),
            other => Err(spec_error(format!(
                "unknown protocol {other:?} (expected \"quick\", \"reduced\" or \"paper\")"
            ))),
        }
    }
}

/// Serializable fabric geometry.
#[derive(Debug, Clone, PartialEq)]
pub enum FabricSpec {
    /// A named predefined organization from
    /// [`mcnet_system::organizations`]: `"table1_org_a"`, `"table1_org_b"`,
    /// `"small_test"` or `"medium"`.
    Org {
        /// The organization name.
        name: String,
    },
    /// An explicit heterogeneous tree: `(count, ports, levels)` cluster groups.
    Tree {
        /// Cluster groups, each repeated `count` times.
        groups: Vec<(usize, usize, usize)>,
    },
    /// A k-ary n-cube torus.
    Torus {
        /// Radix `k` (nodes per dimension).
        radix: usize,
        /// Dimension count `n`.
        dimensions: usize,
    },
}

impl FabricSpec {
    /// Materializes the fabric.
    pub fn build(&self) -> Result<Fabric> {
        match self {
            FabricSpec::Org { name } => Ok(Fabric::Tree(match name.as_str() {
                "table1_org_a" => organizations::table1_org_a(),
                "table1_org_b" => organizations::table1_org_b(),
                "small_test" => organizations::small_test_org(),
                "medium" => organizations::medium_org(),
                other => {
                    return Err(spec_error(format!(
                        "unknown organization {other:?} (expected \"table1_org_a\", \
                         \"table1_org_b\", \"small_test\" or \"medium\")"
                    )))
                }
            })),
            FabricSpec::Tree { groups } => {
                if groups.is_empty() {
                    return Err(spec_error("tree fabric needs at least one cluster group"));
                }
                let clusters = organizations::cluster_groups(groups)?;
                Ok(Fabric::Tree(MultiClusterSystem::new(clusters)?))
            }
            FabricSpec::Torus { radix, dimensions } => {
                Ok(Fabric::Torus(TorusSystem::new(*radix, *dimensions)?))
            }
        }
    }

    fn to_json(&self) -> Json {
        match self {
            FabricSpec::Org { name } => {
                object([("kind", Json::String("org".into())), ("name", Json::String(name.clone()))])
            }
            FabricSpec::Tree { groups } => object([
                ("kind", Json::String("tree".into())),
                (
                    "groups",
                    Json::Array(
                        groups
                            .iter()
                            .map(|&(count, ports, levels)| {
                                Json::Array(vec![
                                    Json::from_u64(count as u64),
                                    Json::from_u64(ports as u64),
                                    Json::from_u64(levels as u64),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            FabricSpec::Torus { radix, dimensions } => object([
                ("kind", Json::String("torus".into())),
                ("radix", Json::from_u64(*radix as u64)),
                ("dimensions", Json::from_u64(*dimensions as u64)),
            ]),
        }
    }

    fn from_json(v: &Json) -> Result<Self> {
        let obj = v.as_object().ok_or_else(|| spec_error("\"fabric\" must be an object"))?;
        match get_str(v, "fabric.kind", "kind")? {
            "org" => {
                reject_unknown_keys(v, "\"fabric\"", &["kind", "name"])?;
                Ok(FabricSpec::Org { name: get_str(v, "fabric.name", "name")?.to_string() })
            }
            "tree" => {
                reject_unknown_keys(v, "\"fabric\"", &["kind", "groups"])?;
                let groups = obj
                    .get("groups")
                    .and_then(Json::as_array)
                    .ok_or_else(|| spec_error("tree fabric needs a \"groups\" array"))?;
                let mut out = Vec::with_capacity(groups.len());
                for g in groups {
                    let triple = g.as_array().filter(|a| a.len() == 3).ok_or_else(|| {
                        spec_error("each tree group must be a [count, ports, levels] triple")
                    })?;
                    let mut nums = [0usize; 3];
                    for (slot, item) in nums.iter_mut().zip(triple) {
                        *slot = item.as_usize().ok_or_else(|| {
                            spec_error("tree group entries must be non-negative integers")
                        })?;
                    }
                    out.push((nums[0], nums[1], nums[2]));
                }
                Ok(FabricSpec::Tree { groups: out })
            }
            "torus" => {
                reject_unknown_keys(v, "\"fabric\"", &["kind", "radix", "dimensions"])?;
                Ok(FabricSpec::Torus {
                    radix: get_usize(v, "fabric.radix", "radix")?,
                    dimensions: get_usize(v, "fabric.dimensions", "dimensions")?,
                })
            }
            other => Err(spec_error(format!(
                "unknown fabric kind {other:?} (expected \"org\", \"tree\" or \"torus\")"
            ))),
        }
    }
}

/// The serializable plain-data mirror of a [`Scenario`]: everything needed to
/// reproduce a run, with the measurement protocol named by preset. Stored as
/// JSON under `specs/`; see [`ScenarioSpec::from_json`] for the schema.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (keys report and benchmark entries).
    pub name: String,
    /// Fabric geometry.
    pub fabric: FabricSpec,
    /// Message geometry, load and destination pattern.
    pub traffic: TrafficConfig,
    /// Arrival-process shape ([`TrafficSourceSpec::Poisson`] serializes
    /// without a `"source"` key inside `"traffic"`, so every pre-source spec
    /// file parses — and serializes — unchanged; bursty arrivals are opt-in).
    pub source: TrafficSourceSpec,
    /// Measurement-protocol preset.
    pub protocol: Protocol,
    /// Base RNG seed.
    pub seed: u64,
    /// Replication count (≥ 1; 1 means a single run).
    pub replications: usize,
    /// Optional fault-injection plan (timed outages + retry policy). `None`
    /// runs fault-free and serializes without a `"faults"` key.
    pub faults: Option<FaultPlan>,
    /// Routing policy. [`RoutingPolicy::Deterministic`] serializes without a
    /// `"routing"` key, so every pre-policy spec file parses unchanged — and
    /// adaptive routing is strictly opt-in.
    pub routing: RoutingPolicy,
}

impl ScenarioSpec {
    /// Materializes and validates the scenario described by the spec.
    pub fn build(&self) -> Result<Scenario> {
        let mut builder = Scenario::builder()
            .name(self.name.clone())
            .fabric(self.fabric.build()?)
            .traffic(self.traffic)
            .source(self.source.clone())
            .config(self.protocol.sim_config(self.seed))
            .replications(self.replications)
            .routing(self.routing);
        if let Some(plan) = &self.faults {
            builder = builder.faults(plan.clone());
        }
        builder.build()
    }

    /// Returns the spec with the protocol preset replaced (used by CI to run
    /// paper-protocol exemplars at quick protocol).
    pub fn with_protocol(mut self, protocol: Protocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Serializes the spec as pretty-printed JSON (the `specs/*.json` format).
    pub fn to_json(&self) -> String {
        let pattern = match self.traffic.pattern {
            TrafficPattern::Uniform => object([("kind", Json::String("uniform".into()))]),
            TrafficPattern::Hotspot { hotspot, fraction } => object([
                ("kind", Json::String("hotspot".into())),
                ("hotspot", Json::from_u64(hotspot as u64)),
                ("fraction", Json::Number(fraction)),
            ]),
            TrafficPattern::LocalFavoring { locality } => object([
                ("kind", Json::String("local_favoring".into())),
                ("locality", Json::Number(locality)),
            ]),
        };
        let mut traffic_fields = vec![
            ("message_flits", Json::from_u64(self.traffic.message_flits as u64)),
            ("flit_bytes", Json::Number(self.traffic.flit_bytes)),
            ("generation_rate", Json::Number(self.traffic.generation_rate)),
            ("pattern", pattern),
        ];
        if !self.source.is_poisson() {
            traffic_fields.push(("source", self.source.to_json()));
        }
        let mut fields = vec![
            ("name", Json::String(self.name.clone())),
            ("fabric", self.fabric.to_json()),
            (
                "traffic",
                Json::Object(traffic_fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect()),
            ),
            ("protocol", Json::String(self.protocol.as_str().into())),
            ("seed", seed_to_json(self.seed)),
            ("replications", Json::from_u64(self.replications as u64)),
        ];
        if let Some(plan) = &self.faults {
            fields.push(("faults", plan.to_json()));
        }
        if !self.routing.is_deterministic() {
            fields.push(("routing", routing_to_json(self.routing)));
        }
        Json::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect()).to_pretty()
    }

    /// Reads and parses a spec file ([`ScenarioSpec::from_json`]), then
    /// re-anchors any relative trace-file path in `traffic.source` against the
    /// spec file's own directory. This is the loader the spec-running binaries
    /// and the campaign engine use, so a committed spec can reference a
    /// committed trace (say `"path": "traces/torus_16node.csv"` next to it
    /// under `specs/`) and resolve it from any working directory.
    pub fn from_json_file(path: &std::path::Path) -> Result<Self> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| spec_error(format!("cannot read spec file {}: {e}", path.display())))?;
        let mut spec = Self::from_json(&text)?;
        if let Some(base) = path.parent() {
            spec.source.anchor_trace_path(base);
        }
        Ok(spec)
    }

    /// Parses a spec from its JSON form. The schema:
    ///
    /// ```json
    /// {
    ///   "name": "paper_tree_org_b",
    ///   "fabric": {"kind": "org", "name": "table1_org_b"},
    ///   "traffic": {
    ///     "message_flits": 32,
    ///     "flit_bytes": 256.0,
    ///     "generation_rate": 3.0e-4,
    ///     "pattern": {"kind": "uniform"}
    ///   },
    ///   "protocol": "paper",
    ///   "seed": 2006,
    ///   "replications": 3
    /// }
    /// ```
    ///
    /// `fabric.kind` is `"org"` (`name`), `"tree"` (`groups` of
    /// `[count, ports, levels]` triples) or `"torus"` (`radix`, `dimensions`);
    /// `pattern.kind` is `"uniform"`, `"hotspot"` (`hotspot`, `fraction`) or
    /// `"local_favoring"` (`locality`); `seed` is a JSON number, or a decimal
    /// string for values above 2⁵³ (which a JSON number cannot carry exactly).
    /// An optional `traffic.source` object selects the arrival process (see
    /// [`TrafficSourceSpec::from_json`] for its schema; omitted means Poisson,
    /// the paper's process). An optional `"faults"` object adds a
    /// fault-injection plan (see [`FaultPlan::from_json`] for its schema).
    /// Unknown fields anywhere in the spec are rejected — a misspelled key
    /// must not silently fall back to a default. Otherwise parsing only checks
    /// shape; value validation happens in [`ScenarioSpec::build`] so a spec
    /// with, say, a zero rate parses fine but fails to build with a typed
    /// error.
    pub fn from_json(text: &str) -> Result<Self> {
        let doc = Json::parse(text).map_err(|e| spec_error(e.to_string()))?;
        let obj = doc.as_object().ok_or_else(|| spec_error("spec must be a JSON object"))?;
        reject_unknown_keys(
            &doc,
            "the spec",
            &["name", "fabric", "traffic", "protocol", "seed", "replications", "faults", "routing"],
        )?;
        let traffic_json =
            obj.get("traffic").ok_or_else(|| spec_error("spec needs a \"traffic\" object"))?;
        reject_unknown_keys(
            traffic_json,
            "\"traffic\"",
            &["message_flits", "flit_bytes", "generation_rate", "pattern", "source"],
        )?;
        let pattern = match traffic_json.as_object().and_then(|t| t.get("pattern")) {
            None => TrafficPattern::Uniform,
            Some(p) => match get_str(p, "pattern.kind", "kind")? {
                "uniform" => {
                    reject_unknown_keys(p, "\"pattern\"", &["kind"])?;
                    TrafficPattern::Uniform
                }
                "hotspot" => {
                    reject_unknown_keys(p, "\"pattern\"", &["kind", "hotspot", "fraction"])?;
                    TrafficPattern::Hotspot {
                        hotspot: get_usize(p, "pattern.hotspot", "hotspot")?,
                        fraction: get_f64(p, "pattern.fraction", "fraction")?,
                    }
                }
                "local_favoring" => {
                    reject_unknown_keys(p, "\"pattern\"", &["kind", "locality"])?;
                    TrafficPattern::LocalFavoring {
                        locality: get_f64(p, "pattern.locality", "locality")?,
                    }
                }
                other => {
                    return Err(spec_error(format!(
                        "unknown pattern kind {other:?} (expected \"uniform\", \"hotspot\" or \
                         \"local_favoring\")"
                    )))
                }
            },
        };
        let traffic = TrafficConfig {
            message_flits: get_usize(traffic_json, "traffic.message_flits", "message_flits")?,
            flit_bytes: get_f64(traffic_json, "traffic.flit_bytes", "flit_bytes")?,
            generation_rate: get_f64(traffic_json, "traffic.generation_rate", "generation_rate")?,
            pattern,
        };
        let source = match traffic_json.as_object().and_then(|t| t.get("source")) {
            None => TrafficSourceSpec::Poisson,
            Some(s) => TrafficSourceSpec::from_json(s)?,
        };
        Ok(ScenarioSpec {
            name: get_str(&doc, "name", "name")?.to_string(),
            fabric: FabricSpec::from_json(
                obj.get("fabric").ok_or_else(|| spec_error("spec needs a \"fabric\" object"))?,
            )?,
            traffic,
            source,
            protocol: get_str(&doc, "protocol", "protocol")?.parse()?,
            seed: obj.get("seed").and_then(seed_from_json).ok_or_else(|| {
                spec_error("spec needs an integer \"seed\" (or a decimal string above 2^53)")
            })?,
            replications: obj
                .get("replications")
                .map_or(Some(1), Json::as_usize)
                .ok_or_else(|| spec_error("\"replications\" must be a non-negative integer"))?,
            faults: obj.get("faults").map(FaultPlan::from_json).transpose()?,
            routing: obj.get("routing").map(routing_from_json).transpose()?.unwrap_or_default(),
        })
    }
}

/// Serializes a non-deterministic routing policy as the spec's `"routing"`
/// object: `{"policy": "adaptive_torus", "adaptive_vcs": N}` or
/// `{"policy": "randomized_updown"}`. Deterministic policies never reach this
/// (the spec omits the key entirely).
fn routing_to_json(policy: RoutingPolicy) -> Json {
    match policy {
        RoutingPolicy::Deterministic => {
            object([("policy", Json::String(policy.spec_name().into()))])
        }
        RoutingPolicy::AdaptiveTorus { adaptive_vcs } => object([
            ("policy", Json::String(policy.spec_name().into())),
            ("adaptive_vcs", Json::from_u64(adaptive_vcs as u64)),
        ]),
        RoutingPolicy::RandomizedUpDown => {
            object([("policy", Json::String(policy.spec_name().into()))])
        }
    }
}

/// Parses the spec's `"routing"` object. Unknown policies and stray keys are
/// typed spec errors; `adaptive_vcs` belongs only to `"adaptive_torus"` (where
/// it defaults to [`crate::policy::DEFAULT_ADAPTIVE_VCS`]).
fn routing_from_json(v: &Json) -> Result<RoutingPolicy> {
    let obj = v.as_object().ok_or_else(|| spec_error("\"routing\" must be an object"))?;
    match get_str(v, "routing.policy", "policy")? {
        "deterministic" => {
            reject_unknown_keys(v, "\"routing\"", &["policy"])?;
            Ok(RoutingPolicy::Deterministic)
        }
        "adaptive_torus" => {
            reject_unknown_keys(v, "\"routing\"", &["policy", "adaptive_vcs"])?;
            let adaptive_vcs = match obj.get("adaptive_vcs") {
                None => crate::policy::DEFAULT_ADAPTIVE_VCS,
                Some(n) => n
                    .as_u64()
                    .filter(|&n| n >= 1 && n <= RoutingPolicy::MAX_ADAPTIVE_VCS as u64)
                    .ok_or_else(|| {
                        spec_error(format!(
                            "\"routing.adaptive_vcs\" must be an integer in 1..={}",
                            RoutingPolicy::MAX_ADAPTIVE_VCS
                        ))
                    })? as u8,
            };
            Ok(RoutingPolicy::AdaptiveTorus { adaptive_vcs })
        }
        "randomized_updown" => {
            reject_unknown_keys(v, "\"routing\"", &["policy"])?;
            Ok(RoutingPolicy::RandomizedUpDown)
        }
        other => Err(spec_error(format!(
            "unknown routing policy {other:?} (expected \"deterministic\", \"adaptive_torus\" or \
             \"randomized_updown\")"
        ))),
    }
}

pub(crate) fn spec_error(reason: impl Into<String>) -> SimError {
    SimError::InvalidSpec { reason: reason.into() }
}

/// Rejects unrecognised keys anywhere in a spec object — a misspelled nested
/// key (say `"patern"`) must fail loudly, not silently fall back to a default
/// and run the wrong workload. Non-objects pass through; the typed accessors
/// report those.
pub(crate) fn reject_unknown_keys(v: &Json, context: &str, allowed: &[&str]) -> Result<()> {
    if let Some(obj) = v.as_object() {
        for key in obj.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(spec_error(format!(
                    "unknown field {key:?} in {context} (expected one of {allowed:?})"
                )));
            }
        }
    }
    Ok(())
}

/// Encodes a full-range u64 seed: a JSON number when it fits the f64-exact
/// range, a decimal string above 2⁵³ (JSON numbers would silently round there,
/// breaking run reproducibility). Anything that prints a seed — the spec, the
/// report, the `scenario` bin — must use this, never `Json::from_u64`.
pub fn seed_to_json(seed: u64) -> Json {
    if seed <= (1 << 53) {
        Json::from_u64(seed)
    } else {
        Json::String(seed.to_string())
    }
}

/// Decodes either seed encoding.
pub(crate) fn seed_from_json(v: &Json) -> Option<u64> {
    v.as_u64().or_else(|| v.as_str().and_then(|s| s.parse().ok()))
}

pub(crate) fn get_str<'a>(v: &'a Json, path: &str, key: &str) -> Result<&'a str> {
    v.as_object()
        .and_then(|o| o.get(key))
        .and_then(Json::as_str)
        .ok_or_else(|| spec_error(format!("spec needs a string field {path:?}")))
}

pub(crate) fn get_f64(v: &Json, path: &str, key: &str) -> Result<f64> {
    v.as_object()
        .and_then(|o| o.get(key))
        .and_then(Json::as_f64)
        .ok_or_else(|| spec_error(format!("spec needs a number field {path:?}")))
}

pub(crate) fn get_usize(v: &Json, path: &str, key: &str) -> Result<usize> {
    v.as_object()
        .and_then(|o| o.get(key))
        .and_then(Json::as_usize)
        .ok_or_else(|| spec_error(format!("spec needs a non-negative integer field {path:?}")))
}

fn opt_f64(v: Option<f64>) -> Json {
    v.map_or(Json::Null, Json::Number)
}

fn class_summary_json(c: &crate::stats::ClassSummary) -> Json {
    object([
        ("count", Json::from_u64(c.count)),
        ("mean", Json::Number(c.mean)),
        ("std_dev", Json::Number(c.std_dev)),
    ])
}

/// Renders one [`SimReport`] as a JSON tree (all fields; `None` becomes
/// `null`). Kept in this module so the report schema and the spec schema
/// evolve together.
pub fn sim_report_json(r: &SimReport) -> Json {
    object([
        ("generation_rate", Json::Number(r.generation_rate)),
        ("mean_latency", Json::Number(r.mean_latency)),
        ("latency_std_dev", Json::Number(r.latency_std_dev)),
        ("latency_std_error", Json::Number(r.latency_std_error)),
        ("max_latency", Json::Number(r.max_latency)),
        ("p99_latency", opt_f64(r.p99_latency)),
        ("intra", class_summary_json(&r.intra)),
        ("inter", class_summary_json(&r.inter)),
        ("measured_messages", Json::from_u64(r.measured_messages)),
        ("generated_messages", Json::from_u64(r.generated_messages)),
        ("delivered_messages", Json::from_u64(r.delivered_messages)),
        ("retransmits", Json::from_u64(r.retransmits)),
        ("dropped_messages", Json::from_u64(r.dropped_messages)),
        ("mean_attempt_latency", Json::Number(r.mean_attempt_latency)),
        ("routing", Json::String(r.routing.clone())),
        ("adaptive_misroutes", Json::from_u64(r.adaptive_misroutes)),
        ("escape_fallbacks", Json::from_u64(r.escape_fallbacks)),
        // 16-hex-digit string: a u64 digest does not survive a JSON number.
        ("digest", Json::String(format!("{:016x}", r.digest))),
        (
            "time_series",
            Json::Array(
                r.time_series
                    .iter()
                    .map(|w| {
                        object([
                            ("start", Json::Number(w.start)),
                            ("delivered", Json::from_u64(w.delivered)),
                            ("dropped", Json::from_u64(w.dropped)),
                            ("mean_latency", opt_f64(w.mean_latency)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("contention_ratio", Json::Number(r.contention_ratio)),
        ("max_channel_utilization", Json::Number(r.max_channel_utilization)),
        ("mean_bridge_utilization", opt_f64(r.mean_bridge_utilization)),
        ("max_bridge_utilization", opt_f64(r.max_bridge_utilization)),
        ("simulated_time", Json::Number(r.simulated_time)),
        ("events", Json::from_u64(r.events)),
        ("events_per_message", Json::Number(r.events_per_message)),
        ("seed", seed_to_json(r.seed)),
    ])
}

/// Renders a [`ReplicatedReport`] as a JSON tree.
pub fn replicated_report_json(r: &ReplicatedReport) -> Json {
    object([
        ("mean_latency", Json::Number(r.mean_latency)),
        ("halfwidth_95", opt_f64(r.halfwidth_95)),
        ("replications", Json::Array(r.replications.iter().map(sim_report_json).collect())),
    ])
}

/// Renders a [`ModelReport`] (the [`Scenario::evaluate`] output) as a JSON
/// tree: the unified headline numbers plus the backend-specific breakdown.
pub fn model_report_json(r: &ModelReport) -> Json {
    let detail = match &r.detail {
        mcnet_model::ModelDetail::Tree(t) => object([
            ("kind", Json::String("tree".into())),
            ("clusters", Json::from_u64(t.clusters.len() as u64)),
        ]),
        mcnet_model::ModelDetail::Torus(t) => object([
            ("kind", Json::String("torus".into())),
            ("source_wait", Json::Number(t.source_wait)),
            ("network", Json::Number(t.network)),
            ("tail", Json::Number(t.tail)),
            ("average_hops", Json::Number(t.average_hops)),
            ("hotspot_total", opt_f64(t.hotspot_total)),
            ("background_total", opt_f64(t.background_total)),
        ]),
    };
    object([
        ("generation_rate", Json::Number(r.generation_rate)),
        ("mean_latency", Json::Number(r.mean_latency)),
        ("intra_latency", Json::Number(r.intra_latency)),
        ("inter_latency", Json::Number(r.inter_latency)),
        ("max_channel_utilization", Json::Number(r.max_channel_utilization)),
        ("detail", detail),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_tree_scenario(seed: u64) -> Scenario {
        Scenario::builder()
            .tree(organizations::small_test_org())
            .traffic(TrafficConfig::uniform(8, 256.0, 1e-3).unwrap())
            .config(SimConfig::quick(seed))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_requires_fabric_and_traffic() {
        let missing_fabric =
            Scenario::builder().traffic(TrafficConfig::uniform(8, 256.0, 1e-3).unwrap()).build();
        assert!(matches!(missing_fabric, Err(SimError::InvalidConfiguration { .. })));
        let missing_traffic = Scenario::builder().tree(organizations::small_test_org()).build();
        assert!(matches!(missing_traffic, Err(SimError::InvalidConfiguration { .. })));
    }

    #[test]
    fn builder_rejects_degenerate_scenarios() {
        let zero_rate = Scenario::builder()
            .tree(organizations::small_test_org())
            .traffic(TrafficConfig::uniform(8, 256.0, 0.0).unwrap())
            .build();
        assert!(matches!(zero_rate, Err(SimError::InvalidConfiguration { .. })));
        let zero_reps = Scenario::builder()
            .tree(organizations::small_test_org())
            .traffic(TrafficConfig::uniform(8, 256.0, 1e-3).unwrap())
            .replications(0)
            .build();
        assert!(matches!(zero_reps, Err(SimError::InvalidConfiguration { .. })));
        let bad_hotspot = Scenario::builder()
            .torus(TorusSystem::new(4, 2).unwrap())
            .traffic(
                TrafficConfig::uniform(8, 256.0, 1e-3)
                    .unwrap()
                    .with_pattern(TrafficPattern::Hotspot { hotspot: 16, fraction: 0.2 })
                    .unwrap(),
            )
            .build();
        assert!(matches!(bad_hotspot, Err(SimError::InvalidConfiguration { .. })));
    }

    #[test]
    fn defaults_and_accessors() {
        let s = quick_tree_scenario(7);
        assert_eq!(s.replications(), 1);
        assert_eq!(s.name(), s.fabric().summary());
        assert_eq!(s.config().seed, 7);
        assert_eq!(s.clone().with_seed(9).config().seed, 9);
        let named = Scenario::builder()
            .torus(TorusSystem::new(4, 2).unwrap())
            .traffic(TrafficConfig::uniform(8, 256.0, 1e-3).unwrap())
            .name("my_torus")
            .build()
            .unwrap();
        assert_eq!(named.name(), "my_torus");
    }

    #[test]
    fn execute_honours_the_replication_plan() {
        let single = quick_tree_scenario(5).execute().unwrap();
        assert!(matches!(single, ScenarioOutcome::Single(_)));
        let replicated = Scenario::builder()
            .tree(organizations::small_test_org())
            .traffic(TrafficConfig::uniform(8, 256.0, 1e-3).unwrap())
            .config(SimConfig::quick(5))
            .replications(2)
            .build()
            .unwrap()
            .execute()
            .unwrap();
        match &replicated {
            ScenarioOutcome::Replicated(r) => assert_eq!(r.replications.len(), 2),
            other => panic!("expected replicated outcome, got {other:?}"),
        }
        assert!(replicated.mean_latency() > 0.0);
        // The outcome JSON parses back and carries the headline number.
        let json = replicated.to_json().to_pretty();
        let parsed = Json::parse(&json).unwrap();
        assert_eq!(parsed.as_object().unwrap()["kind"].as_str(), Some("replicated"));
    }

    #[test]
    fn execute_reusing_is_bit_identical_to_execute() {
        // One cached engine serves a single run, a replicated aggregate and a
        // different-rate single run back to back — each outcome equal to the
        // fresh-engine `execute` of the same scenario.
        let mut slot = None;
        let single = quick_tree_scenario(5);
        assert_eq!(single.execute_reusing(&mut slot).unwrap(), single.execute().unwrap());
        assert!(slot.is_some(), "the engine must stay cached for the next cell");

        let replicated = Scenario::builder()
            .tree(organizations::small_test_org())
            .traffic(TrafficConfig::uniform(8, 256.0, 2e-3).unwrap())
            .config(SimConfig::quick(41))
            .replications(3)
            .build()
            .unwrap();
        assert_eq!(replicated.execute_reusing(&mut slot).unwrap(), replicated.execute().unwrap());

        let single_again = quick_tree_scenario(77);
        assert_eq!(
            single_again.execute_reusing(&mut slot).unwrap(),
            single_again.execute().unwrap()
        );
    }

    #[test]
    fn sweep_matches_point_runs_bit_for_bit() {
        let s = quick_tree_scenario(100);
        let rates = [5e-4, 1e-3, 2e-3];
        let swept = s.sweep(&rates).unwrap();
        assert_eq!(swept.len(), 3);
        for (i, (report, &rate)) in swept.iter().zip(&rates).enumerate() {
            // Point i of a sweep == a standalone run at rate_i with seed+i.
            let standalone = Scenario::builder()
                .tree(organizations::small_test_org())
                .traffic(s.traffic().with_rate(rate).unwrap())
                .config(SimConfig::quick(100 + i as u64))
                .build()
                .unwrap()
                .run()
                .unwrap();
            assert_eq!(report, &standalone);
        }
    }

    #[test]
    fn degenerate_rate_grids_are_typed_spec_errors() {
        // An empty grid used to silently produce an empty report; it and every
        // non-finite / non-positive grid are now SimError::InvalidSpec.
        let s = quick_tree_scenario(1);
        for bad in [&[][..], &[f64::NAN][..], &[f64::INFINITY][..], &[1e-3, -1e-3][..], &[0.0][..]]
        {
            assert!(
                matches!(s.sweep(bad), Err(SimError::InvalidSpec { .. })),
                "grid {bad:?} must be rejected as an invalid spec"
            );
            assert!(matches!(s.sweep_outcomes(bad), Err(SimError::InvalidSpec { .. })));
            assert!(matches!(s.sweep_replicated(bad, 2), Err(SimError::InvalidSpec { .. })));
            assert!(matches!(s.evaluate_sweep(bad), Err(SimError::InvalidSpec { .. })));
        }
        // A valid grid still sweeps.
        assert_eq!(s.sweep_outcomes(&[1e-3]).unwrap().len(), 1);
    }

    #[test]
    fn evaluate_runs_the_analytical_model_on_both_fabrics() {
        // The scenario's analytical mode returns the same numbers as building
        // the model backend by hand, for the tree and the torus alike.
        let tree = quick_tree_scenario(3);
        let report = tree.evaluate().unwrap();
        assert_eq!(report.backend_kind(), "tree");
        let direct = tree
            .model_backend()
            .evaluate(tree.traffic(), mcnet_model::ModelOptions::default())
            .unwrap();
        assert_eq!(report, direct);
        assert!(report.mean_latency > 0.0);

        let torus = Scenario::builder()
            .torus(TorusSystem::new(4, 2).unwrap())
            .traffic(TrafficConfig::uniform(16, 256.0, 1e-3).unwrap())
            .build()
            .unwrap();
        let report = torus.evaluate().unwrap();
        assert_eq!(report.backend_kind(), "torus");
        assert!(report.intra_latency < report.inter_latency);
        // The JSON rendering parses back and carries the headline number.
        let doc = Json::parse(&model_report_json(&report).to_pretty()).unwrap();
        assert_eq!(doc.as_object().unwrap()["mean_latency"].as_f64(), Some(report.mean_latency));

        // Saturation is a typed error, mirroring EventBudgetExhausted.
        let saturated = Scenario::builder()
            .torus(TorusSystem::new(4, 2).unwrap())
            .traffic(TrafficConfig::uniform(16, 256.0, 0.5).unwrap())
            .build()
            .unwrap()
            .evaluate();
        assert!(matches!(saturated, Err(SimError::ModelSaturated { .. })), "{saturated:?}");
    }

    #[test]
    fn evaluate_sweep_mirrors_the_simulation_sweep_contract() {
        let s = quick_tree_scenario(5);
        let rates = [2e-4, 4e-4];
        let reports = s.evaluate_sweep(&rates).unwrap();
        assert_eq!(reports.len(), 2);
        for (report, &rate) in reports.iter().zip(&rates) {
            let report = report.as_ref().unwrap();
            assert_eq!(report.generation_rate, rate);
        }
        // A spec round-trips into the same analytical result: one spec, two
        // worlds.
        let spec = ScenarioSpec {
            name: "eval".into(),
            fabric: FabricSpec::Torus { radix: 4, dimensions: 2 },
            traffic: TrafficConfig::uniform(16, 256.0, 1e-3).unwrap(),
            source: TrafficSourceSpec::Poisson,
            protocol: Protocol::Quick,
            seed: 1,
            replications: 1,
            faults: None,
            routing: RoutingPolicy::Deterministic,
        };
        let from_spec = ScenarioSpec::from_json(&spec.to_json()).unwrap().build().unwrap();
        assert_eq!(from_spec.evaluate().unwrap(), spec.build().unwrap().evaluate().unwrap());
    }

    #[test]
    fn replicated_sweep_shares_the_backend_contract() {
        let s = quick_tree_scenario(40);
        let outcomes = s.sweep_replicated(&[1e-3, 2e-3], 2).unwrap();
        assert_eq!(outcomes.len(), 2);
        for (outcome, rate) in outcomes.iter().zip([1e-3, 2e-3]) {
            let agg = outcome.as_ref().unwrap();
            assert_eq!(agg.replications.len(), 2);
            assert!(agg.halfwidth_95.is_some());
            assert_eq!(agg.replications[0].generation_rate, rate);
            // Same base seed at every point (the backend-comparison contract).
            assert_eq!(agg.replications[0].seed, 40);
        }
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = ScenarioSpec {
            name: "round_trip".into(),
            fabric: FabricSpec::Tree { groups: vec![(2, 4, 1), (1, 4, 2)] },
            traffic: TrafficConfig {
                message_flits: 16,
                flit_bytes: 512.0,
                generation_rate: 2.5e-4,
                pattern: TrafficPattern::Hotspot { hotspot: 3, fraction: 0.15 },
            },
            source: TrafficSourceSpec::Poisson,
            protocol: Protocol::Reduced,
            seed: 99,
            replications: 4,
            faults: None,
            routing: RoutingPolicy::Deterministic,
        };
        let text = spec.to_json();
        let back = ScenarioSpec::from_json(&text).unwrap();
        assert_eq!(back, spec);
        // And the spec builds into a runnable scenario.
        let scenario = back.build().unwrap();
        assert_eq!(scenario.name(), "round_trip");
        assert_eq!(scenario.replications(), 4);
        assert_eq!(scenario.config().measured_messages, 10_000);
    }

    #[test]
    fn org_and_torus_specs_build() {
        for (name, fabric) in
            [("table1_org_a", 1120), ("table1_org_b", 544), ("small_test", 32), ("medium", 128)]
        {
            let spec = FabricSpec::Org { name: name.into() };
            assert_eq!(spec.build().unwrap().total_nodes(), fabric);
        }
        assert!(FabricSpec::Org { name: "nope".into() }.build().is_err());
        let torus = FabricSpec::Torus { radix: 8, dimensions: 2 }.build().unwrap();
        assert_eq!(torus.total_nodes(), 64);
    }

    #[test]
    fn invalid_specs_fail_with_typed_errors() {
        // Zero generation rate parses but fails to build.
        let zero_rate = r#"{
            "name": "bad", "fabric": {"kind": "torus", "radix": 4, "dimensions": 2},
            "traffic": {"message_flits": 8, "flit_bytes": 256.0, "generation_rate": 0.0},
            "protocol": "quick", "seed": 1, "replications": 1
        }"#;
        let spec = ScenarioSpec::from_json(zero_rate).unwrap();
        assert!(matches!(spec.build(), Err(SimError::InvalidConfiguration { .. })));
        // Empty geometry is rejected.
        let empty_tree = r#"{
            "name": "bad", "fabric": {"kind": "tree", "groups": []},
            "traffic": {"message_flits": 8, "flit_bytes": 256.0, "generation_rate": 1e-3},
            "protocol": "quick", "seed": 1, "replications": 1
        }"#;
        let spec = ScenarioSpec::from_json(empty_tree).unwrap();
        assert!(matches!(spec.build(), Err(SimError::InvalidSpec { .. })));
        // Shape errors are typed, not panics.
        for bad in [
            "not json",
            "[]",
            r#"{"name": "x"}"#,
            r#"{"name": "x", "fabric": {"kind": "warp"}, "traffic": {"message_flits": 8,
                "flit_bytes": 256.0, "generation_rate": 1e-3}, "protocol": "quick", "seed": 1}"#,
            r#"{"name": "x", "fabric": {"kind": "torus", "radix": 4, "dimensions": 2},
                "traffic": {"message_flits": 8, "flit_bytes": 256.0, "generation_rate": 1e-3},
                "protocol": "warp", "seed": 1}"#,
            r#"{"name": "x", "unknown_field": 1, "fabric": {"kind": "torus", "radix": 4,
                "dimensions": 2}, "traffic": {"message_flits": 8, "flit_bytes": 256.0,
                "generation_rate": 1e-3}, "protocol": "quick", "seed": 1}"#,
        ] {
            assert!(
                matches!(ScenarioSpec::from_json(bad), Err(SimError::InvalidSpec { .. })),
                "{bad:?} must be rejected with a typed spec error"
            );
        }
    }

    #[test]
    fn misspelled_nested_keys_are_rejected() {
        // A typo'd "pattern" key must not silently degrade to uniform traffic.
        for bad in [
            r#"{"name": "x", "fabric": {"kind": "torus", "radix": 4, "dimensions": 2},
                "traffic": {"message_flits": 8, "flit_bytes": 256.0, "generation_rate": 1e-3,
                "patern": {"kind": "hotspot", "hotspot": 0, "fraction": 0.6}},
                "protocol": "quick", "seed": 1}"#,
            r#"{"name": "x", "fabric": {"kind": "torus", "radix": 4, "dimensions": 2,
                "radiks": 8},
                "traffic": {"message_flits": 8, "flit_bytes": 256.0, "generation_rate": 1e-3},
                "protocol": "quick", "seed": 1}"#,
            r#"{"name": "x", "fabric": {"kind": "torus", "radix": 4, "dimensions": 2},
                "traffic": {"message_flits": 8, "flit_bytes": 256.0, "generation_rate": 1e-3,
                "pattern": {"kind": "hotspot", "hotspot": 0, "fraction": 0.6, "fractional": 1}},
                "protocol": "quick", "seed": 1}"#,
        ] {
            assert!(
                matches!(ScenarioSpec::from_json(bad), Err(SimError::InvalidSpec { .. })),
                "nested unknown key must be rejected: {bad}"
            );
        }
    }

    #[test]
    fn seeds_above_2_pow_53_round_trip_losslessly() {
        // A JSON number would round such seeds; they travel as decimal strings.
        let spec = ScenarioSpec {
            name: "big_seed".into(),
            fabric: FabricSpec::Torus { radix: 4, dimensions: 2 },
            traffic: TrafficConfig::uniform(8, 256.0, 1e-3).unwrap(),
            source: TrafficSourceSpec::Poisson,
            protocol: Protocol::Quick,
            seed: u64::MAX - 12345,
            replications: 1,
            faults: None,
            routing: RoutingPolicy::Deterministic,
        };
        let back = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back.seed, u64::MAX - 12345);
        // And report serialization doesn't panic on a full-range seed either.
        let outcome = back.build().unwrap().execute().unwrap();
        let doc = Json::parse(&outcome.to_json().to_pretty()).unwrap();
        let report = &doc.as_object().unwrap()["report"];
        assert_eq!(
            report.as_object().unwrap()["seed"].as_str(),
            Some(format!("{}", u64::MAX - 12345).as_str())
        );
    }

    #[test]
    fn fault_plans_ride_the_spec_round_trip_and_gate_on_the_fabric() {
        use crate::fault::{BridgeUnit, FaultAction, FaultEvent, FaultTarget};
        let target = FaultTarget::Bridge { cluster: 0, unit: BridgeUnit::Concentrator };
        let plan = FaultPlan::new(vec![
            FaultEvent { at: 500.0, target, action: FaultAction::Down },
            FaultEvent { at: 2000.0, target, action: FaultAction::Up },
        ]);
        let spec = ScenarioSpec {
            name: "faulted".into(),
            fabric: FabricSpec::Org { name: "small_test".into() },
            traffic: TrafficConfig::uniform(8, 256.0, 1e-3).unwrap(),
            source: TrafficSourceSpec::Poisson,
            protocol: Protocol::Quick,
            seed: 7,
            replications: 1,
            faults: Some(plan.clone()),
            routing: RoutingPolicy::Deterministic,
        };
        let back = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
        let scenario = back.build().unwrap();
        assert_eq!(scenario.faults(), Some(&plan));
        // A fault-free spec keeps serializing without any "faults" key.
        let clean = ScenarioSpec { faults: None, ..spec.clone() };
        assert!(!clean.to_json().contains("faults"));
        // Fabric-dependent validation runs at build: a bridge fault cannot
        // target a torus, and the error is a typed spec error.
        let mismatched =
            ScenarioSpec { fabric: FabricSpec::Torus { radix: 4, dimensions: 2 }, ..spec };
        assert!(matches!(mismatched.build(), Err(SimError::InvalidSpec { .. })));
        // A faulted run degrades but completes, and reports the fault surface.
        let report = scenario.run().unwrap();
        assert_eq!(report.delivered_messages + report.dropped_messages, report.generated_messages);
        assert!(report.retransmits > 0);
        assert!(!report.time_series.is_empty());
        let json = Json::parse(&sim_report_json(&report).to_pretty()).unwrap();
        let obj = json.as_object().unwrap();
        assert_eq!(obj["digest"].as_str(), Some(format!("{:016x}", report.digest).as_str()));
        assert_eq!(obj["retransmits"].as_u64(), Some(report.retransmits));
        assert!(obj["time_series"].as_array().is_some_and(|a| !a.is_empty()));
    }

    #[test]
    fn routing_policies_ride_the_spec_round_trip() {
        let spec = ScenarioSpec {
            name: "adaptive".into(),
            fabric: FabricSpec::Torus { radix: 8, dimensions: 2 },
            traffic: TrafficConfig::uniform(8, 256.0, 1e-3).unwrap(),
            source: TrafficSourceSpec::Poisson,
            protocol: Protocol::Quick,
            seed: 7,
            replications: 1,
            faults: None,
            routing: RoutingPolicy::AdaptiveTorus { adaptive_vcs: 2 },
        };
        let text = spec.to_json();
        assert!(text.contains("adaptive_torus"));
        let back = ScenarioSpec::from_json(&text).unwrap();
        assert_eq!(back, spec);
        assert_eq!(
            back.build().unwrap().routing(),
            RoutingPolicy::AdaptiveTorus { adaptive_vcs: 2 }
        );
        // Deterministic specs serialize without a "routing" key, so every
        // pre-policy spec file keeps parsing — adaptive routing is opt-in.
        let det = ScenarioSpec { routing: RoutingPolicy::Deterministic, ..spec };
        assert!(!det.to_json().contains("routing"));
        assert_eq!(ScenarioSpec::from_json(&det.to_json()).unwrap(), det);
        // An omitted adaptive_vcs takes the default.
        let defaulted = r#"{
            "name": "x", "fabric": {"kind": "torus", "radix": 4, "dimensions": 2},
            "traffic": {"message_flits": 8, "flit_bytes": 256.0, "generation_rate": 1e-3},
            "protocol": "quick", "seed": 1, "replications": 1,
            "routing": {"policy": "adaptive_torus"}
        }"#;
        assert_eq!(
            ScenarioSpec::from_json(defaulted).unwrap().routing,
            RoutingPolicy::AdaptiveTorus { adaptive_vcs: crate::policy::DEFAULT_ADAPTIVE_VCS }
        );
    }

    #[test]
    fn invalid_routing_specs_fail_with_typed_errors() {
        let base = |routing: &str| {
            format!(
                r#"{{
                "name": "x", "fabric": {{"kind": "torus", "radix": 4, "dimensions": 2}},
                "traffic": {{"message_flits": 8, "flit_bytes": 256.0, "generation_rate": 1e-3}},
                "protocol": "quick", "seed": 1, "replications": 1,
                "routing": {routing}
            }}"#
            )
        };
        // Unknown policy names, out-of-range VC counts and stray keys are all
        // typed parse errors, not silent defaults.
        for bad in [
            r#"{"policy": "warp_speed"}"#,
            r#"{"policy": "adaptive_torus", "adaptive_vcs": 0}"#,
            r#"{"policy": "adaptive_torus", "adaptive_vcs": 99}"#,
            r#"{"policy": "adaptive_torus", "adaptive_vc": 1}"#,
            r#"{"policy": "randomized_updown", "adaptive_vcs": 1}"#,
            r#""adaptive_torus""#,
        ] {
            assert!(
                matches!(ScenarioSpec::from_json(&base(bad)), Err(SimError::InvalidSpec { .. })),
                "routing {bad} must be rejected"
            );
        }
        // Policy/fabric mismatches are build-time configuration errors.
        let mismatch = Scenario::builder()
            .tree(organizations::small_test_org())
            .traffic(TrafficConfig::uniform(8, 256.0, 1e-3).unwrap())
            .routing(RoutingPolicy::AdaptiveTorus { adaptive_vcs: 1 })
            .build();
        assert!(matches!(mismatch, Err(SimError::InvalidConfiguration { .. })));
        let mismatch = Scenario::builder()
            .torus(TorusSystem::new(4, 2).unwrap())
            .traffic(TrafficConfig::uniform(8, 256.0, 1e-3).unwrap())
            .routing(RoutingPolicy::RandomizedUpDown)
            .build();
        assert!(matches!(mismatch, Err(SimError::InvalidConfiguration { .. })));
    }

    #[test]
    fn scenario_runs_report_their_routing_policy() {
        let adaptive = Scenario::builder()
            .torus(TorusSystem::new(4, 2).unwrap())
            .traffic(TrafficConfig::uniform(8, 256.0, 2e-3).unwrap())
            .config(SimConfig::quick(9))
            .routing(RoutingPolicy::AdaptiveTorus { adaptive_vcs: 1 })
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(adaptive.routing, "adaptive_torus");
        assert_eq!(adaptive.delivered_messages, adaptive.generated_messages);

        let randomized = Scenario::builder()
            .tree(organizations::small_test_org())
            .traffic(TrafficConfig::uniform(8, 256.0, 1e-3).unwrap())
            .config(SimConfig::quick(9))
            .routing(RoutingPolicy::RandomizedUpDown)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(randomized.routing, "randomized_updown");
        assert!(randomized.adaptive_misroutes > 0);
        assert_eq!(randomized.escape_fallbacks, 0);

        let det = quick_tree_scenario(9).run().unwrap();
        assert_eq!(det.routing, "deterministic");
        assert_eq!(det.adaptive_misroutes, 0);
        assert_eq!(det.escape_fallbacks, 0);
        // The report JSON carries the policy fields.
        let doc = Json::parse(&sim_report_json(&adaptive).to_pretty()).unwrap();
        let obj = doc.as_object().unwrap();
        assert_eq!(obj["routing"].as_str(), Some("adaptive_torus"));
        assert_eq!(obj["adaptive_misroutes"].as_u64(), Some(adaptive.adaptive_misroutes));
        assert_eq!(obj["escape_fallbacks"].as_u64(), Some(adaptive.escape_fallbacks));
    }

    #[test]
    fn adaptive_scenarios_evaluate_through_the_adaptive_model() {
        let build = |routing: RoutingPolicy| {
            Scenario::builder()
                .torus(TorusSystem::new(8, 2).unwrap())
                .traffic(TrafficConfig::uniform(16, 256.0, 1e-3).unwrap())
                .routing(routing)
                .build()
                .unwrap()
        };
        let adaptive = build(RoutingPolicy::AdaptiveTorus { adaptive_vcs: 2 }).evaluate().unwrap();
        let det = build(RoutingPolicy::Deterministic).evaluate().unwrap();
        let mcnet_model::ModelDetail::Torus(detail) = adaptive.detail else {
            panic!("torus scenario must produce a torus detail");
        };
        assert!(detail.escape_fraction.is_some(), "adaptive knob must reach the model");
        let mcnet_model::ModelDetail::Torus(detail) = det.detail else {
            panic!("torus scenario must produce a torus detail");
        };
        assert_eq!(detail.escape_fraction, None);
        assert!(
            adaptive.mean_latency < det.mean_latency,
            "adaptive VCs relieve blocking in the model too"
        );
    }

    #[test]
    fn with_protocol_overrides_the_preset() {
        let spec = ScenarioSpec {
            name: "x".into(),
            fabric: FabricSpec::Torus { radix: 4, dimensions: 2 },
            traffic: TrafficConfig::uniform(8, 256.0, 1e-3).unwrap(),
            source: TrafficSourceSpec::Poisson,
            protocol: Protocol::Paper,
            seed: 1,
            replications: 1,
            faults: None,
            routing: RoutingPolicy::Deterministic,
        };
        let quick = spec.with_protocol(Protocol::Quick).build().unwrap();
        assert_eq!(quick.config().measured_messages, 2_000);
    }
}
