//! Fault injection: timed link and switch outages with graceful degradation.
//!
//! A [`FaultPlan`] is plain data — a list of timed [`FaultEvent`]s plus the
//! retry policy — that enters [`crate::scenario::ScenarioSpec`] under the
//! optional `"faults"` key, round-trips through the offline JSON layer, and
//! materializes at simulation build time as `ChannelDown` / `ChannelUp` events
//! in the future event list. Targets are named in fabric terms, not raw channel
//! ids:
//!
//! * [`FaultTarget::Bridge`] — one of a tree cluster's bridge links (the
//!   concentrator link into ICN2 or the dispatcher link out of it), the single
//!   points every inter-cluster message crosses;
//! * [`FaultTarget::TorusLink`] — a directed ring edge of the torus, addressed
//!   by `(node, dim, dir)`; cutting it disables every virtual channel of that
//!   edge;
//! * [`FaultTarget::Switch`] — a whole torus router: every incident link VC
//!   plus the node's injection and ejection channels.
//!
//! Validation happens in two stages, both surfacing as
//! [`crate::SimError::InvalidSpec`]: shape checks at parse time (finite non-negative
//! times, per-target `Down`/`Up` alternation — an `Up` with no preceding
//! `Down` is rejected), and fabric-dependent range checks at build time
//! (cluster/node/dim in range, target kind matching the fabric).
//!
//! Degradation semantics live in the engine: a message holding or queued on a
//! channel that goes down is aborted and retransmitted from its source after an
//! exponential-backoff delay (`retry_base · 2^(failures−1)`), and is counted as
//! dropped once it has failed `max_attempts` times.

use crate::backend::FabricBackend;
use crate::channels::GlobalChannelId;
use crate::json::{object, Json};
use crate::scenario::{get_f64, get_str, get_usize, reject_unknown_keys, spec_error, Fabric};
use crate::Result;

/// Which of a tree cluster's two bridge links a fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BridgeUnit {
    /// The link from the cluster's ECN1 into ICN2 (outbound inter traffic).
    Concentrator,
    /// The link from ICN2 back into the cluster's ECN1 (inbound inter traffic).
    Dispatcher,
}

/// Direction of a torus ring edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RingDir {
    /// The +1 direction of the ring (coordinate increases, with wrap-around).
    Plus,
    /// The −1 direction.
    Minus,
}

/// What a fault event targets, in fabric terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultTarget {
    /// A tree cluster's bridge link (tree fabrics only).
    Bridge {
        /// Cluster index.
        cluster: usize,
        /// Concentrator or dispatcher side.
        unit: BridgeUnit,
    },
    /// A directed torus ring edge leaving `node` in dimension `dim` (torus
    /// fabrics only). All virtual channels of the edge go down together; for
    /// `k = 2` both directions name the same single channel.
    TorusLink {
        /// Source node of the directed edge.
        node: usize,
        /// Ring dimension.
        dim: usize,
        /// Edge direction.
        dir: RingDir,
    },
    /// A whole torus router: every incident link VC plus the node's injection
    /// and ejection channels (torus fabrics only — tree switches live inside
    /// the m-port n-tree network instances and are not individually
    /// addressable; the tree's fault family is its bridges).
    Switch {
        /// Node whose router goes down.
        node: usize,
    },
}

/// Whether a fault event takes its target down or brings it back up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultAction {
    /// The target's channels join the disabled set; holders and waiters abort.
    Down,
    /// The target's channels leave the disabled set.
    Up,
}

/// One timed fault event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Simulation time at which the event fires (finite, ≥ 0).
    pub at: f64,
    /// What it targets.
    pub target: FaultTarget,
    /// Down or up.
    pub action: FaultAction,
}

/// A declarative fault schedule plus the degraded-mode retry policy.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Timed fault events, in schedule order.
    pub events: Vec<FaultEvent>,
    /// Maximum delivery attempts per message (1 = no retransmission); a
    /// message failing this many times is counted as dropped.
    pub max_attempts: u32,
    /// Base retransmission delay; failure `i` retries after
    /// `retry_base · 2^(i−1)`.
    pub retry_base: f64,
    /// Bucket width of the report's degradation time series.
    pub window: f64,
}

/// One fault event resolved against a fabric: the concrete channel set.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedFault {
    /// Simulation time at which the event fires.
    pub at: f64,
    /// Down or up.
    pub action: FaultAction,
    /// The global channel ids the event disables or re-enables.
    pub channels: Vec<GlobalChannelId>,
}

impl FaultPlan {
    /// Default delivery-attempt bound.
    pub const DEFAULT_MAX_ATTEMPTS: u32 = 5;
    /// Default base retransmission delay.
    pub const DEFAULT_RETRY_BASE: f64 = 50.0;
    /// Default time-series bucket width.
    pub const DEFAULT_WINDOW: f64 = 1000.0;

    /// A plan with the given events and default retry policy.
    pub fn new(events: Vec<FaultEvent>) -> Self {
        FaultPlan {
            events,
            max_attempts: Self::DEFAULT_MAX_ATTEMPTS,
            retry_base: Self::DEFAULT_RETRY_BASE,
            window: Self::DEFAULT_WINDOW,
        }
    }

    /// Fabric-independent shape validation: finite non-negative event times,
    /// a sane retry policy, and per-target strict `Down`/`Up` alternation in
    /// increasing time order (an `Up` before any `Down`, a double `Down`, or a
    /// time tie on one target is rejected).
    pub fn validate(&self) -> Result<()> {
        if !(self.max_attempts >= 1 && self.max_attempts <= 64) {
            return Err(spec_error(format!(
                "faults.max_attempts must be between 1 and 64, got {}",
                self.max_attempts
            )));
        }
        if !(self.retry_base.is_finite() && self.retry_base > 0.0) {
            return Err(spec_error(format!(
                "faults.retry_base must be a finite positive time, got {}",
                self.retry_base
            )));
        }
        if !(self.window.is_finite() && self.window > 0.0) {
            return Err(spec_error(format!(
                "faults.window must be a finite positive time, got {}",
                self.window
            )));
        }
        let mut state: std::collections::HashMap<FaultTarget, (f64, bool)> =
            std::collections::HashMap::new();
        for (i, event) in self.events.iter().enumerate() {
            if !event.at.is_finite() || event.at < 0.0 {
                return Err(spec_error(format!(
                    "fault event {i} has a non-finite or negative time {}",
                    event.at
                )));
            }
            let slot = state.entry(event.target).or_insert((f64::NEG_INFINITY, false));
            match event.action {
                FaultAction::Up if !slot.1 => {
                    return Err(spec_error(format!(
                        "fault event {i} brings {:?} up before any down",
                        event.target
                    )));
                }
                FaultAction::Down if slot.1 => {
                    return Err(spec_error(format!(
                        "fault event {i} takes {:?} down while it is already down",
                        event.target
                    )));
                }
                action => {
                    if event.at <= slot.0 {
                        return Err(spec_error(format!(
                            "fault event {i} on {:?} is not after the target's previous event \
                             ({} <= {})",
                            event.target, event.at, slot.0
                        )));
                    }
                    *slot = (event.at, action == FaultAction::Down);
                }
            }
        }
        Ok(())
    }

    /// Fabric-dependent validation: every target's kind matches the fabric and
    /// its indices are in range. Runs at scenario build, before any backend is
    /// materialized.
    pub fn validate_against(&self, fabric: &Fabric) -> Result<()> {
        for (i, event) in self.events.iter().enumerate() {
            match (event.target, fabric) {
                (FaultTarget::Bridge { cluster, .. }, Fabric::Tree(system)) => {
                    if cluster >= system.num_clusters() {
                        return Err(spec_error(format!(
                            "fault event {i}: bridge cluster {cluster} is out of range for a \
                             fabric of {} clusters",
                            system.num_clusters()
                        )));
                    }
                }
                (FaultTarget::Bridge { .. }, Fabric::Torus(_)) => {
                    return Err(spec_error(format!(
                        "fault event {i}: bridge targets need a tree fabric"
                    )));
                }
                (FaultTarget::TorusLink { node, dim, .. }, Fabric::Torus(torus)) => {
                    if node >= torus.total_nodes() {
                        return Err(spec_error(format!(
                            "fault event {i}: torus node {node} is out of range for {} nodes",
                            torus.total_nodes()
                        )));
                    }
                    if dim >= torus.dimensions() {
                        return Err(spec_error(format!(
                            "fault event {i}: torus dimension {dim} is out of range for a \
                             {}-dimensional fabric",
                            torus.dimensions()
                        )));
                    }
                }
                (FaultTarget::Switch { node }, Fabric::Torus(torus)) => {
                    if node >= torus.total_nodes() {
                        return Err(spec_error(format!(
                            "fault event {i}: switch node {node} is out of range for {} nodes",
                            torus.total_nodes()
                        )));
                    }
                }
                (FaultTarget::TorusLink { .. } | FaultTarget::Switch { .. }, Fabric::Tree(_)) => {
                    return Err(spec_error(format!(
                        "fault event {i}: {:?} targets need a torus fabric",
                        event.target
                    )));
                }
            }
        }
        Ok(())
    }

    /// Resolves every event's target into its concrete channel set on the
    /// given backend, in schedule order.
    pub fn resolve(&self, backend: &FabricBackend) -> Result<Vec<ResolvedFault>> {
        self.events
            .iter()
            .map(|event| {
                let channels = match event.target {
                    FaultTarget::Bridge { cluster, unit } => {
                        let fabric = backend
                            .as_tree()
                            .ok_or_else(|| spec_error("bridge fault targets need a tree fabric"))?;
                        if cluster >= backend.num_clusters() {
                            return Err(spec_error(format!(
                                "bridge cluster {cluster} is out of range"
                            )));
                        }
                        vec![match unit {
                            BridgeUnit::Concentrator => fabric.bridges().concentrate(cluster),
                            BridgeUnit::Dispatcher => fabric.bridges().dispatch(cluster),
                        }]
                    }
                    FaultTarget::TorusLink { node, dim, dir } => {
                        let cube = backend.as_cube().ok_or_else(|| {
                            spec_error("torus_link fault targets need a torus fabric")
                        })?;
                        cube.directed_link_channels(node, dim, dir == RingDir::Plus)
                    }
                    FaultTarget::Switch { node } => {
                        let cube = backend.as_cube().ok_or_else(|| {
                            spec_error("switch fault targets need a torus fabric")
                        })?;
                        cube.switch_channels(node)
                    }
                };
                Ok(ResolvedFault { at: event.at, action: event.action, channels })
            })
            .collect()
    }

    /// Renders the plan as a JSON tree (the `"faults"` value of a spec). All
    /// fields are explicit, so serialization is a round-trip fixed point.
    pub fn to_json(&self) -> Json {
        object([
            ("max_attempts", Json::from_u64(u64::from(self.max_attempts))),
            ("retry_base", Json::Number(self.retry_base)),
            ("window", Json::Number(self.window)),
            (
                "events",
                Json::Array(
                    self.events
                        .iter()
                        .map(|e| {
                            object([
                                ("at", Json::Number(e.at)),
                                (
                                    "action",
                                    Json::String(
                                        match e.action {
                                            FaultAction::Down => "down",
                                            FaultAction::Up => "up",
                                        }
                                        .into(),
                                    ),
                                ),
                                ("target", target_to_json(&e.target)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses the `"faults"` value of a spec and runs the fabric-independent
    /// [`validate`](Self::validate) checks. Schema:
    ///
    /// ```json
    /// {
    ///   "max_attempts": 5,
    ///   "retry_base": 50.0,
    ///   "window": 1000.0,
    ///   "events": [
    ///     {"at": 5000.0, "action": "down",
    ///      "target": {"kind": "bridge", "cluster": 0, "unit": "concentrator"}},
    ///     {"at": 20000.0, "action": "up",
    ///      "target": {"kind": "bridge", "cluster": 0, "unit": "concentrator"}}
    ///   ]
    /// }
    /// ```
    ///
    /// Target kinds: `"bridge"` (`cluster`, `unit`: `"concentrator"` |
    /// `"dispatcher"`), `"torus_link"` (`node`, `dim`, `dir`: `"plus"` |
    /// `"minus"`), `"switch"` (`node`). `max_attempts`, `retry_base` and
    /// `window` are optional. Unknown keys are rejected at every level.
    pub fn from_json(v: &Json) -> Result<Self> {
        let obj = v.as_object().ok_or_else(|| spec_error("\"faults\" must be an object"))?;
        reject_unknown_keys(v, "\"faults\"", &["max_attempts", "retry_base", "window", "events"])?;
        let max_attempts = match obj.get("max_attempts") {
            None => Self::DEFAULT_MAX_ATTEMPTS,
            Some(m) => m.as_u64().and_then(|x| u32::try_from(x).ok()).ok_or_else(|| {
                spec_error("\"faults.max_attempts\" must be a non-negative integer")
            })?,
        };
        let retry_base = match obj.get("retry_base") {
            None => Self::DEFAULT_RETRY_BASE,
            Some(_) => get_f64(v, "faults.retry_base", "retry_base")?,
        };
        let window = match obj.get("window") {
            None => Self::DEFAULT_WINDOW,
            Some(_) => get_f64(v, "faults.window", "window")?,
        };
        let events = obj
            .get("events")
            .and_then(Json::as_array)
            .ok_or_else(|| spec_error("\"faults\" needs an \"events\" array"))?
            .iter()
            .map(event_from_json)
            .collect::<Result<Vec<_>>>()?;
        let plan = FaultPlan { events, max_attempts, retry_base, window };
        plan.validate()?;
        Ok(plan)
    }
}

fn target_to_json(target: &FaultTarget) -> Json {
    match target {
        FaultTarget::Bridge { cluster, unit } => object([
            ("kind", Json::String("bridge".into())),
            ("cluster", Json::from_u64(*cluster as u64)),
            (
                "unit",
                Json::String(
                    match unit {
                        BridgeUnit::Concentrator => "concentrator",
                        BridgeUnit::Dispatcher => "dispatcher",
                    }
                    .into(),
                ),
            ),
        ]),
        FaultTarget::TorusLink { node, dim, dir } => object([
            ("kind", Json::String("torus_link".into())),
            ("node", Json::from_u64(*node as u64)),
            ("dim", Json::from_u64(*dim as u64)),
            (
                "dir",
                Json::String(
                    match dir {
                        RingDir::Plus => "plus",
                        RingDir::Minus => "minus",
                    }
                    .into(),
                ),
            ),
        ]),
        FaultTarget::Switch { node } => object([
            ("kind", Json::String("switch".into())),
            ("node", Json::from_u64(*node as u64)),
        ]),
    }
}

fn event_from_json(v: &Json) -> Result<FaultEvent> {
    reject_unknown_keys(v, "a fault event", &["at", "action", "target"])?;
    let action = match get_str(v, "faults.events[].action", "action")? {
        "down" => FaultAction::Down,
        "up" => FaultAction::Up,
        other => {
            return Err(spec_error(format!(
                "unknown fault action {other:?} (expected \"down\" or \"up\")"
            )))
        }
    };
    let target_json = v
        .as_object()
        .and_then(|o| o.get("target"))
        .ok_or_else(|| spec_error("a fault event needs a \"target\" object"))?;
    Ok(FaultEvent {
        at: get_f64(v, "faults.events[].at", "at")?,
        action,
        target: target_from_json(target_json)?,
    })
}

fn target_from_json(v: &Json) -> Result<FaultTarget> {
    match get_str(v, "fault target.kind", "kind")? {
        "bridge" => {
            reject_unknown_keys(v, "a bridge fault target", &["kind", "cluster", "unit"])?;
            let unit = match get_str(v, "fault target.unit", "unit")? {
                "concentrator" => BridgeUnit::Concentrator,
                "dispatcher" => BridgeUnit::Dispatcher,
                other => {
                    return Err(spec_error(format!(
                        "unknown bridge unit {other:?} (expected \"concentrator\" or \
                         \"dispatcher\")"
                    )))
                }
            };
            Ok(FaultTarget::Bridge {
                cluster: get_usize(v, "fault target.cluster", "cluster")?,
                unit,
            })
        }
        "torus_link" => {
            reject_unknown_keys(v, "a torus_link fault target", &["kind", "node", "dim", "dir"])?;
            let dir = match get_str(v, "fault target.dir", "dir")? {
                "plus" => RingDir::Plus,
                "minus" => RingDir::Minus,
                other => {
                    return Err(spec_error(format!(
                        "unknown ring direction {other:?} (expected \"plus\" or \"minus\")"
                    )))
                }
            };
            Ok(FaultTarget::TorusLink {
                node: get_usize(v, "fault target.node", "node")?,
                dim: get_usize(v, "fault target.dim", "dim")?,
                dir,
            })
        }
        "switch" => {
            reject_unknown_keys(v, "a switch fault target", &["kind", "node"])?;
            Ok(FaultTarget::Switch { node: get_usize(v, "fault target.node", "node")? })
        }
        other => Err(spec_error(format!(
            "unknown fault target kind {other:?} (expected \"bridge\", \"torus_link\" or \
             \"switch\")"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimError;
    use mcnet_system::{organizations, TorusSystem, TrafficConfig};

    fn bridge(cluster: usize) -> FaultTarget {
        FaultTarget::Bridge { cluster, unit: BridgeUnit::Concentrator }
    }

    fn down_up(target: FaultTarget, down: f64, up: f64) -> Vec<FaultEvent> {
        vec![
            FaultEvent { at: down, target, action: FaultAction::Down },
            FaultEvent { at: up, target, action: FaultAction::Up },
        ]
    }

    #[test]
    fn shape_validation_accepts_alternating_schedules() {
        let mut events = down_up(bridge(0), 10.0, 20.0);
        events.extend(down_up(bridge(1), 5.0, 40.0));
        events.extend(down_up(bridge(0), 30.0, 35.0));
        assert!(FaultPlan::new(events).validate().is_ok());
        assert!(FaultPlan::new(Vec::new()).validate().is_ok(), "an empty plan is a no-op");
    }

    #[test]
    fn shape_validation_rejects_malformed_plans() {
        // Up before any down.
        let up_first = FaultPlan::new(vec![FaultEvent {
            at: 1.0,
            target: bridge(0),
            action: FaultAction::Up,
        }]);
        assert!(matches!(up_first.validate(), Err(SimError::InvalidSpec { .. })));
        // Double down on one target.
        let double_down = FaultPlan::new(vec![
            FaultEvent { at: 1.0, target: bridge(0), action: FaultAction::Down },
            FaultEvent { at: 2.0, target: bridge(0), action: FaultAction::Down },
        ]);
        assert!(matches!(double_down.validate(), Err(SimError::InvalidSpec { .. })));
        // Non-increasing per-target times.
        let tied = FaultPlan::new(down_up(bridge(0), 5.0, 5.0));
        assert!(matches!(tied.validate(), Err(SimError::InvalidSpec { .. })));
        // Negative and non-finite times.
        for at in [-1.0, f64::NAN, f64::INFINITY] {
            let plan = FaultPlan::new(vec![FaultEvent {
                at,
                target: bridge(0),
                action: FaultAction::Down,
            }]);
            assert!(matches!(plan.validate(), Err(SimError::InvalidSpec { .. })), "at={at}");
        }
        // Retry-policy bounds.
        let mut plan = FaultPlan::new(down_up(bridge(0), 1.0, 2.0));
        plan.max_attempts = 0;
        assert!(plan.validate().is_err());
        plan.max_attempts = 5;
        plan.retry_base = 0.0;
        assert!(plan.validate().is_err());
        plan.retry_base = 50.0;
        plan.window = f64::INFINITY;
        assert!(plan.validate().is_err());
    }

    #[test]
    fn fabric_validation_checks_kinds_and_ranges() {
        let tree = Fabric::Tree(organizations::small_test_org());
        let torus = Fabric::Torus(TorusSystem::new(4, 2).unwrap());

        let bridge_plan = FaultPlan::new(down_up(bridge(0), 1.0, 2.0));
        assert!(bridge_plan.validate_against(&tree).is_ok());
        assert!(bridge_plan.validate_against(&torus).is_err(), "bridge needs a tree");
        let far_bridge = FaultPlan::new(down_up(bridge(99), 1.0, 2.0));
        assert!(far_bridge.validate_against(&tree).is_err(), "cluster out of range");

        let link = FaultTarget::TorusLink { node: 5, dim: 0, dir: RingDir::Plus };
        let link_plan = FaultPlan::new(down_up(link, 1.0, 2.0));
        assert!(link_plan.validate_against(&torus).is_ok());
        assert!(link_plan.validate_against(&tree).is_err(), "torus_link needs a torus");
        let far_node = FaultTarget::TorusLink { node: 16, dim: 0, dir: RingDir::Plus };
        assert!(FaultPlan::new(down_up(far_node, 1.0, 2.0)).validate_against(&torus).is_err());
        let far_dim = FaultTarget::TorusLink { node: 0, dim: 2, dir: RingDir::Plus };
        assert!(FaultPlan::new(down_up(far_dim, 1.0, 2.0)).validate_against(&torus).is_err());

        let switch = FaultTarget::Switch { node: 15 };
        assert!(FaultPlan::new(down_up(switch, 1.0, 2.0)).validate_against(&torus).is_ok());
        assert!(FaultPlan::new(down_up(switch, 1.0, 2.0)).validate_against(&tree).is_err());
        let far_switch = FaultTarget::Switch { node: 16 };
        assert!(FaultPlan::new(down_up(far_switch, 1.0, 2.0)).validate_against(&torus).is_err());
    }

    #[test]
    fn resolution_names_the_expected_channels() {
        let traffic = TrafficConfig::uniform(16, 256.0, 1e-3).unwrap();

        let system = organizations::small_test_org();
        let backend = FabricBackend::tree(&system, &traffic).unwrap();
        let plan = FaultPlan::new(vec![
            FaultEvent { at: 5.0, target: bridge(1), action: FaultAction::Down },
            FaultEvent {
                at: 9.0,
                target: FaultTarget::Bridge { cluster: 1, unit: BridgeUnit::Dispatcher },
                action: FaultAction::Down,
            },
        ]);
        let resolved = plan.resolve(&backend).unwrap();
        let bridges = backend.as_tree().unwrap().bridges();
        assert_eq!(resolved[0].channels, vec![bridges.concentrate(1)]);
        assert_eq!(resolved[1].channels, vec![bridges.dispatch(1)]);
        assert_eq!(resolved[0].at, 5.0);
        assert_eq!(resolved[0].action, FaultAction::Down);

        let torus = TorusSystem::new(4, 2).unwrap();
        let backend = FabricBackend::cube(&torus, &traffic).unwrap();
        let cube = backend.as_cube().unwrap();
        let link = FaultTarget::TorusLink { node: 5, dim: 1, dir: RingDir::Minus };
        let plan = FaultPlan::new(down_up(link, 1.0, 2.0));
        let resolved = plan.resolve(&backend).unwrap();
        assert_eq!(resolved[0].channels, cube.directed_link_channels(5, 1, false));
        assert_eq!(resolved[0].channels.len(), 2, "both VCs of the edge go down");
        assert_eq!(resolved[1].channels, resolved[0].channels, "up mirrors down");

        let plan = FaultPlan::new(down_up(FaultTarget::Switch { node: 7 }, 1.0, 2.0));
        assert_eq!(plan.resolve(&backend).unwrap()[0].channels, cube.switch_channels(7));

        // Kind mismatches are typed errors at resolution too.
        assert!(FaultPlan::new(down_up(bridge(0), 1.0, 2.0)).resolve(&backend).is_err());
    }

    #[test]
    fn plan_round_trips_through_json() {
        let mut plan = FaultPlan::new(vec![
            FaultEvent { at: 100.0, target: bridge(0), action: FaultAction::Down },
            FaultEvent {
                at: 150.0,
                target: FaultTarget::TorusLink { node: 3, dim: 1, dir: RingDir::Minus },
                action: FaultAction::Down,
            },
            FaultEvent { at: 200.0, target: bridge(0), action: FaultAction::Up },
            FaultEvent {
                at: 300.0,
                target: FaultTarget::Switch { node: 9 },
                action: FaultAction::Down,
            },
        ]);
        plan.max_attempts = 7;
        plan.retry_base = 25.0;
        plan.window = 400.0;
        let json = plan.to_json();
        let back = FaultPlan::from_json(&json).unwrap();
        assert_eq!(back, plan);
        // Fixed point: render → parse → render is stable.
        assert_eq!(back.to_json().to_pretty(), json.to_pretty());
        // Defaults apply when the policy keys are omitted.
        let minimal = Json::parse(r#"{"events": []}"#).unwrap();
        let parsed = FaultPlan::from_json(&minimal).unwrap();
        assert_eq!(parsed.max_attempts, FaultPlan::DEFAULT_MAX_ATTEMPTS);
        assert_eq!(parsed.retry_base, FaultPlan::DEFAULT_RETRY_BASE);
        assert_eq!(parsed.window, FaultPlan::DEFAULT_WINDOW);
    }

    #[test]
    fn malformed_json_plans_are_rejected() {
        for bad in [
            r#"{"events": [{"at": 1.0, "action": "sideways",
                "target": {"kind": "switch", "node": 0}}]}"#,
            r#"{"events": [{"at": 1.0, "action": "down", "target": {"kind": "warp"}}]}"#,
            r#"{"events": [{"at": 1.0, "action": "down",
                "target": {"kind": "switch", "node": 0}, "extra": 1}]}"#,
            r#"{"events": [{"at": 1.0, "action": "down",
                "target": {"kind": "switch", "node": 0, "extra": 1}}]}"#,
            r#"{"events": [{"at": -1.0, "action": "down",
                "target": {"kind": "switch", "node": 0}}]}"#,
            r#"{"events": [{"at": 1.0, "action": "up",
                "target": {"kind": "switch", "node": 0}}]}"#,
            r#"{"events": [{"at": 1e999, "action": "down",
                "target": {"kind": "switch", "node": 0}}]}"#,
            r#"{"events": [{"action": "down", "target": {"kind": "switch", "node": 0}}]}"#,
            r#"{"events": 7}"#,
            r#"{"max_attempts": 5}"#,
            r#"{"events": [], "bogus": 1}"#,
            r#"{"events": [], "max_attempts": "many"}"#,
        ] {
            // Non-finite literals (1e999) already die in the JSON parser; the
            // rest must fall out of `from_json` as typed spec errors.
            let rejected = match Json::parse(bad) {
                Err(_) => true,
                Ok(doc) => {
                    matches!(FaultPlan::from_json(&doc), Err(SimError::InvalidSpec { .. }))
                }
            };
            assert!(rejected, "must reject {bad}");
        }
    }
}
