//! Message generation: Poisson arrivals and destination selection.
//!
//! Paper assumptions 1–2: each node generates messages according to an independent
//! Poisson process with rate `λ_g`, and destinations are uniformly distributed over all
//! other nodes. The hot-spot and cluster-local patterns are provided for the simulator
//! only (the paper lists non-uniform traffic as future work).

use crate::{Result, SimError};
use mcnet_system::{MultiClusterSystem, TorusSystem, TrafficConfig, TrafficPattern};
use rand::Rng;

/// The paper's stationary Poisson source: exponential inter-arrival times and
/// a static destination mix. This is the default (and historically the only)
/// implementation of [`crate::traffic_source::TrafficSource`]; the bursty and
/// trace-driven sources in that module wrap or replace it.
#[derive(Debug, Clone)]
pub struct Poisson {
    generation_rate: f64,
    pattern: TrafficPattern,
    total_nodes: usize,
    /// Exclusive prefix sums of cluster node counts (tree) or sub-ring
    /// neighborhood ranges (torus), used by the local-favouring pattern to
    /// sample within / outside the source's partition.
    cluster_ranges: Vec<(usize, usize)>,
}

impl Poisson {
    /// Creates a source for the given multi-cluster system and traffic
    /// configuration.
    pub fn new(system: &MultiClusterSystem, traffic: &TrafficConfig) -> Result<Self> {
        Self::from_parts(traffic, system.total_nodes(), Self::cluster_ranges_of(system))
    }

    /// The contiguous cluster partition of a multi-cluster tree system, in the
    /// `(start, end)` form the sources consume.
    pub(crate) fn cluster_ranges_of(system: &MultiClusterSystem) -> Vec<(usize, usize)> {
        (0..system.num_clusters())
            .map(|c| {
                let r = system.node_range(c).expect("cluster index in range");
                (r.start, r.end)
            })
            .collect()
    }

    /// Creates a source for a torus system. The cluster-relative patterns map
    /// onto the torus's dimension-0 sub-ring neighborhoods: uniform and
    /// hot-spot traffic carry over directly, and `LocalFavoring` keeps messages
    /// inside the source's sub-ring.
    pub fn for_torus(torus: &TorusSystem, traffic: &TrafficConfig) -> Result<Self> {
        Self::from_parts(traffic, torus.total_nodes(), torus.neighborhood_ranges())
    }

    /// Shared constructor over an arbitrary contiguous node partition.
    pub(crate) fn from_parts(
        traffic: &TrafficConfig,
        total_nodes: usize,
        cluster_ranges: Vec<(usize, usize)>,
    ) -> Result<Self> {
        Self::check(traffic, total_nodes)?;
        Ok(Poisson {
            generation_rate: traffic.generation_rate,
            pattern: traffic.pattern,
            total_nodes,
            cluster_ranges,
        })
    }

    /// Validates a traffic configuration against a node count.
    fn check(traffic: &TrafficConfig, total_nodes: usize) -> Result<()> {
        traffic.validate().map_err(SimError::from)?;
        if traffic.generation_rate <= 0.0 {
            return Err(SimError::InvalidConfiguration {
                reason: "simulation requires a positive generation rate".into(),
            });
        }
        if let TrafficPattern::Hotspot { hotspot, .. } = traffic.pattern {
            if hotspot >= total_nodes {
                return Err(SimError::InvalidConfiguration {
                    reason: format!("hotspot node {hotspot} outside the system"),
                });
            }
        }
        Ok(())
    }

    /// Re-validates and adopts a new traffic configuration over the same node
    /// partition: the rate and pattern may change between runs, the topology
    /// (and therefore the partition ranges) may not. Used by the engine's run
    /// reuse so campaign cells never rebuild their source.
    pub fn rebind(&mut self, traffic: &TrafficConfig) -> Result<()> {
        Self::check(traffic, self.total_nodes)?;
        self.generation_rate = traffic.generation_rate;
        self.pattern = traffic.pattern;
        Ok(())
    }

    /// The per-node generation rate.
    pub fn generation_rate(&self) -> f64 {
        self.generation_rate
    }

    /// Samples the exponential inter-arrival time of one node's Poisson process.
    ///
    /// The uniform draw is guarded away from the `u = 0` endpoint: `gen::<f64>()`
    /// returns values in `[0, 1)`, and `−ln(1 − 0)/λ = 0` would produce a zero
    /// inter-arrival time — two messages generated at the same instant at the
    /// same node, creating event ties the queue has to break arbitrarily. The
    /// guard clamps the `ln` argument to the largest double below 1, so the
    /// result is always strictly positive.
    pub fn sample_interarrival<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen::<f64>();
        // 1 − u ∈ (0, 1]; exclude 1 itself (drawn iff u == 0) to keep ln < 0.
        let v = (1.0 - u).min(1.0 - f64::EPSILON / 2.0);
        -v.ln() / self.generation_rate
    }

    /// Samples a destination for a message generated at global node `src`.
    pub fn sample_destination<R: Rng + ?Sized>(&self, rng: &mut R, src: usize) -> usize {
        match self.pattern {
            TrafficPattern::Uniform => self.uniform_other(rng, src),
            TrafficPattern::Hotspot { hotspot, fraction } => {
                // The fraction coin is drawn unconditionally so the RNG stream
                // does not depend on whether the source happens to be the
                // hot-spot node — runs stay comparable across patterns and
                // hot-spot placements.
                let coin = rng.gen::<f64>();
                if hotspot != src && coin < fraction {
                    hotspot
                } else {
                    self.uniform_other(rng, src)
                }
            }
            TrafficPattern::LocalFavoring { locality } => {
                let (start, end) = self.cluster_of(src);
                let cluster_size = end - start;
                // A cluster of one node cannot keep traffic local.
                if cluster_size > 1 && rng.gen::<f64>() < locality {
                    // Uniform within the cluster, excluding the source.
                    let mut d = rng.gen_range(start..end - 1);
                    if d >= src {
                        d += 1;
                    }
                    d
                } else if self.total_nodes > cluster_size {
                    // Uniform over all nodes outside the source cluster.
                    let outside = self.total_nodes - cluster_size;
                    let mut idx = rng.gen_range(0..outside);
                    if idx >= start {
                        idx += cluster_size;
                    }
                    idx
                } else {
                    self.uniform_other(rng, src)
                }
            }
        }
    }

    fn uniform_other<R: Rng + ?Sized>(&self, rng: &mut R, src: usize) -> usize {
        let mut d = rng.gen_range(0..self.total_nodes - 1);
        if d >= src {
            d += 1;
        }
        d
    }

    /// The partition range a node belongs to. Binary search: the ranges are
    /// sorted and contiguous, and the torus mapping grows their count to
    /// `k^(n-1)` sub-rings — a linear scan here would sit on the per-message
    /// sampling path.
    fn cluster_of(&self, node: usize) -> (usize, usize) {
        let idx = self.cluster_ranges.partition_point(|&(_, e)| e <= node);
        let range = self.cluster_ranges[idx];
        debug_assert!(node >= range.0 && node < range.1, "node belongs to some cluster");
        range
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcnet_system::organizations;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn source(pattern: TrafficPattern) -> (MultiClusterSystem, Poisson) {
        let system = organizations::small_test_org();
        let traffic =
            TrafficConfig::uniform(32, 256.0, 1e-3).unwrap().with_pattern(pattern).unwrap();
        let src = Poisson::new(&system, &traffic).unwrap();
        (system, src)
    }

    /// An adversarial generator whose `f64` draws are exactly 0.0 — the endpoint
    /// that used to produce zero inter-arrival times.
    struct ZeroRng;

    impl rand::Rng for ZeroRng {
        fn next_u64(&mut self) -> u64 {
            0
        }
    }

    #[test]
    fn interarrival_is_strictly_positive_even_for_a_zero_draw() {
        let (_, src) = source(TrafficPattern::Uniform);
        let mut rng = ZeroRng;
        assert_eq!(rng.gen::<f64>(), 0.0, "the shim must expose the hazardous endpoint");
        let dt = src.sample_interarrival(&mut rng);
        assert!(dt > 0.0, "zero inter-arrival time would tie generation events: {dt}");
        assert!(dt.is_finite());
    }

    #[test]
    fn hotspot_coin_is_consumed_regardless_of_source() {
        // The fraction coin must be drawn even when the source *is* the hot-spot
        // node, so the RNG stream (and therefore the rest of the run) does not
        // depend on which node generates. Pinned with a fixed seed: sampling at
        // the hot-spot equals uniform sampling after manually burning one coin.
        let hotspot = 3usize;
        let (_, hotspot_src) = source(TrafficPattern::Hotspot { hotspot, fraction: 0.5 });
        let (_, uniform_src) = source(TrafficPattern::Uniform);
        for seed in 0..32 {
            let mut rng_a = SmallRng::seed_from_u64(seed);
            let d_hot = hotspot_src.sample_destination(&mut rng_a, hotspot);

            let mut rng_b = SmallRng::seed_from_u64(seed);
            let _coin: f64 = rng_b.gen();
            let d_uniform = uniform_src.sample_destination(&mut rng_b, hotspot);

            assert_eq!(d_hot, d_uniform, "seed {seed}: RNG stream diverged by source node");
            // And the generators are fully aligned afterwards.
            assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
        }
    }

    #[test]
    fn torus_source_maps_patterns_onto_subrings() {
        use mcnet_system::TorusSystem;
        let torus = TorusSystem::new(4, 2).unwrap();
        let traffic = TrafficConfig::uniform(32, 256.0, 1e-3)
            .unwrap()
            .with_pattern(TrafficPattern::LocalFavoring { locality: 0.8 })
            .unwrap();
        let src = Poisson::for_torus(&torus, &traffic).unwrap();
        let mut rng = SmallRng::seed_from_u64(11);
        // Node 5 lives in sub-ring 1 (nodes 4..8).
        let samples = 20_000;
        let local = (0..samples)
            .filter(|_| {
                let d = src.sample_destination(&mut rng, 5);
                assert_ne!(d, 5);
                (4..8).contains(&d)
            })
            .count();
        let frac = local as f64 / samples as f64;
        assert!((frac - 0.8).abs() < 0.05, "sub-ring locality fraction {frac}");

        // Hot-spot validation uses the torus node count.
        let bad = TrafficConfig::uniform(32, 256.0, 1e-3)
            .unwrap()
            .with_pattern(TrafficPattern::Hotspot { hotspot: 100, fraction: 0.1 })
            .unwrap();
        assert!(Poisson::for_torus(&torus, &bad).is_err());
    }

    #[test]
    fn interarrival_mean_matches_rate() {
        let (_, src) = source(TrafficPattern::Uniform);
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| src.sample_interarrival(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1000.0).abs() < 15.0, "mean inter-arrival {mean}");
    }

    #[test]
    fn uniform_destinations_cover_all_other_nodes() {
        let (system, src) = source(TrafficPattern::Uniform);
        let mut rng = SmallRng::seed_from_u64(2);
        let n = system.total_nodes();
        let mut counts = vec![0usize; n];
        let samples = 50_000;
        for _ in 0..samples {
            let d = src.sample_destination(&mut rng, 5);
            assert_ne!(d, 5);
            counts[d] += 1;
        }
        assert_eq!(counts[5], 0);
        let expected = samples as f64 / (n - 1) as f64;
        for (i, &c) in counts.iter().enumerate() {
            if i == 5 {
                continue;
            }
            assert!(
                (c as f64 - expected).abs() < expected * 0.15,
                "destination {i} sampled {c} times, expected ≈ {expected}"
            );
        }
    }

    #[test]
    fn hotspot_receives_extra_traffic() {
        let (_, src) = source(TrafficPattern::Hotspot { hotspot: 3, fraction: 0.5 });
        let mut rng = SmallRng::seed_from_u64(3);
        let samples = 20_000;
        let hot = (0..samples).filter(|_| src.sample_destination(&mut rng, 10) == 3).count();
        let frac = hot as f64 / samples as f64;
        assert!(frac > 0.45 && frac < 0.60, "hotspot fraction {frac}");
    }

    #[test]
    fn local_favoring_keeps_traffic_in_cluster() {
        let (system, src) = source(TrafficPattern::LocalFavoring { locality: 0.8 });
        let mut rng = SmallRng::seed_from_u64(4);
        // Source in the last cluster (16 nodes in the small test org).
        let range = system.node_range(3).unwrap();
        let src_node = range.start + 2;
        let samples = 20_000;
        let local = (0..samples)
            .filter(|_| {
                let d = src.sample_destination(&mut rng, src_node);
                assert_ne!(d, src_node);
                range.contains(&d)
            })
            .count();
        let frac = local as f64 / samples as f64;
        assert!((frac - 0.8).abs() < 0.05, "local fraction {frac}");
    }

    #[test]
    fn invalid_configurations_rejected() {
        let system = organizations::small_test_org();
        let zero = TrafficConfig::uniform(32, 256.0, 0.0).unwrap();
        assert!(Poisson::new(&system, &zero).is_err());
        let bad_hotspot = TrafficConfig::uniform(32, 256.0, 1e-3)
            .unwrap()
            .with_pattern(TrafficPattern::Hotspot { hotspot: 10_000, fraction: 0.1 })
            .unwrap();
        assert!(Poisson::new(&system, &bad_hotspot).is_err());
    }
}
