//! Message generation: Poisson arrivals and destination selection.
//!
//! Paper assumptions 1–2: each node generates messages according to an independent
//! Poisson process with rate `λ_g`, and destinations are uniformly distributed over all
//! other nodes. The hot-spot and cluster-local patterns are provided for the simulator
//! only (the paper lists non-uniform traffic as future work).

use crate::{Result, SimError};
use mcnet_system::{MultiClusterSystem, TrafficConfig, TrafficPattern};
use rand::Rng;

/// Samples inter-arrival times and destinations for one simulation run.
#[derive(Debug, Clone)]
pub struct TrafficSource {
    generation_rate: f64,
    pattern: TrafficPattern,
    total_nodes: usize,
    /// Exclusive prefix sums of cluster node counts, used by the local-favouring
    /// pattern to sample within / outside the source cluster.
    cluster_ranges: Vec<(usize, usize)>,
}

impl TrafficSource {
    /// Creates a source for the given system and traffic configuration.
    pub fn new(system: &MultiClusterSystem, traffic: &TrafficConfig) -> Result<Self> {
        traffic.validate().map_err(SimError::from)?;
        if traffic.generation_rate <= 0.0 {
            return Err(SimError::InvalidConfiguration {
                reason: "simulation requires a positive generation rate".into(),
            });
        }
        if let TrafficPattern::Hotspot { hotspot, .. } = traffic.pattern {
            if hotspot >= system.total_nodes() {
                return Err(SimError::InvalidConfiguration {
                    reason: format!("hotspot node {hotspot} outside the system"),
                });
            }
        }
        let cluster_ranges = (0..system.num_clusters())
            .map(|c| {
                let r = system.node_range(c).expect("cluster index in range");
                (r.start, r.end)
            })
            .collect();
        Ok(TrafficSource {
            generation_rate: traffic.generation_rate,
            pattern: traffic.pattern,
            total_nodes: system.total_nodes(),
            cluster_ranges,
        })
    }

    /// The per-node generation rate.
    pub fn generation_rate(&self) -> f64 {
        self.generation_rate
    }

    /// Samples the exponential inter-arrival time of one node's Poisson process.
    pub fn sample_interarrival<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen::<f64>();
        -(1.0 - u).ln() / self.generation_rate
    }

    /// Samples a destination for a message generated at global node `src`.
    pub fn sample_destination<R: Rng + ?Sized>(&self, rng: &mut R, src: usize) -> usize {
        match self.pattern {
            TrafficPattern::Uniform => self.uniform_other(rng, src),
            TrafficPattern::Hotspot { hotspot, fraction } => {
                if hotspot != src && rng.gen::<f64>() < fraction {
                    hotspot
                } else {
                    self.uniform_other(rng, src)
                }
            }
            TrafficPattern::LocalFavoring { locality } => {
                let (start, end) = self.cluster_of(src);
                let cluster_size = end - start;
                // A cluster of one node cannot keep traffic local.
                if cluster_size > 1 && rng.gen::<f64>() < locality {
                    // Uniform within the cluster, excluding the source.
                    let mut d = rng.gen_range(start..end - 1);
                    if d >= src {
                        d += 1;
                    }
                    d
                } else if self.total_nodes > cluster_size {
                    // Uniform over all nodes outside the source cluster.
                    let outside = self.total_nodes - cluster_size;
                    let mut idx = rng.gen_range(0..outside);
                    if idx >= start {
                        idx += cluster_size;
                    }
                    idx
                } else {
                    self.uniform_other(rng, src)
                }
            }
        }
    }

    fn uniform_other<R: Rng + ?Sized>(&self, rng: &mut R, src: usize) -> usize {
        let mut d = rng.gen_range(0..self.total_nodes - 1);
        if d >= src {
            d += 1;
        }
        d
    }

    fn cluster_of(&self, node: usize) -> (usize, usize) {
        *self
            .cluster_ranges
            .iter()
            .find(|(s, e)| node >= *s && node < *e)
            .expect("node belongs to some cluster")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcnet_system::organizations;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn source(pattern: TrafficPattern) -> (MultiClusterSystem, TrafficSource) {
        let system = organizations::small_test_org();
        let traffic =
            TrafficConfig::uniform(32, 256.0, 1e-3).unwrap().with_pattern(pattern).unwrap();
        let src = TrafficSource::new(&system, &traffic).unwrap();
        (system, src)
    }

    #[test]
    fn interarrival_mean_matches_rate() {
        let (_, src) = source(TrafficPattern::Uniform);
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| src.sample_interarrival(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1000.0).abs() < 15.0, "mean inter-arrival {mean}");
    }

    #[test]
    fn uniform_destinations_cover_all_other_nodes() {
        let (system, src) = source(TrafficPattern::Uniform);
        let mut rng = SmallRng::seed_from_u64(2);
        let n = system.total_nodes();
        let mut counts = vec![0usize; n];
        let samples = 50_000;
        for _ in 0..samples {
            let d = src.sample_destination(&mut rng, 5);
            assert_ne!(d, 5);
            counts[d] += 1;
        }
        assert_eq!(counts[5], 0);
        let expected = samples as f64 / (n - 1) as f64;
        for (i, &c) in counts.iter().enumerate() {
            if i == 5 {
                continue;
            }
            assert!(
                (c as f64 - expected).abs() < expected * 0.15,
                "destination {i} sampled {c} times, expected ≈ {expected}"
            );
        }
    }

    #[test]
    fn hotspot_receives_extra_traffic() {
        let (_, src) = source(TrafficPattern::Hotspot { hotspot: 3, fraction: 0.5 });
        let mut rng = SmallRng::seed_from_u64(3);
        let samples = 20_000;
        let hot = (0..samples).filter(|_| src.sample_destination(&mut rng, 10) == 3).count();
        let frac = hot as f64 / samples as f64;
        assert!(frac > 0.45 && frac < 0.60, "hotspot fraction {frac}");
    }

    #[test]
    fn local_favoring_keeps_traffic_in_cluster() {
        let (system, src) = source(TrafficPattern::LocalFavoring { locality: 0.8 });
        let mut rng = SmallRng::seed_from_u64(4);
        // Source in the last cluster (16 nodes in the small test org).
        let range = system.node_range(3).unwrap();
        let src_node = range.start + 2;
        let samples = 20_000;
        let local = (0..samples)
            .filter(|_| {
                let d = src.sample_destination(&mut rng, src_node);
                assert_ne!(d, src_node);
                range.contains(&d)
            })
            .count();
        let frac = local as f64 / samples as f64;
        assert!((frac - 0.8).abs() < 0.05, "local fraction {frac}");
    }

    #[test]
    fn invalid_configurations_rejected() {
        let system = organizations::small_test_org();
        let zero = TrafficConfig::uniform(32, 256.0, 0.0).unwrap();
        assert!(TrafficSource::new(&system, &zero).is_err());
        let bad_hotspot = TrafficConfig::uniform(32, 256.0, 1e-3)
            .unwrap()
            .with_pattern(TrafficPattern::Hotspot { hotspot: 10_000, fraction: 0.1 })
            .unwrap();
        assert!(TrafficSource::new(&system, &bad_hotspot).is_err());
    }
}
