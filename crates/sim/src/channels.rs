//! Channel occupancy tracking for wormhole flow control.
//!
//! Every unidirectional channel of every network instance is represented by one slot in
//! the [`ChannelPool`]: a busy flag (the channel is part of some worm's path and has
//! not been released yet), a FIFO of messages waiting to acquire it (paper assumption 4:
//! one flit buffer per channel — the worm behind simply blocks in place) and the
//! per-flit transfer time of the channel (`t_cn` for node↔switch channels, `t_cs` for
//! switch↔switch channels).
//!
//! Waiter FIFOs are **allocation-free for the uncontended majority**: instead of
//! one `VecDeque` per channel (thousands of eager heap allocations, almost all
//! of which never see a waiter), every channel carries only a `(head, tail)`
//! pair of indices into one pool-wide [`WaiterArena`] of singly-linked nodes.
//! A link node is taken from the arena's free list only when a message actually
//! has to wait, and returns to it at hand-off — so steady-state contention
//! recycles a handful of nodes and an uncontended run allocates nothing at all.

use crate::event::MessageId;

/// Global identifier of a channel across all network instances of the simulation.
pub type GlobalChannelId = u32;

/// Sentinel for "no link node" in the waiter arena's intrusive lists.
const NIL: u32 = u32::MAX;

/// Sentinel for "no holder" in [`HotChannel::holder`] (message slab slots
/// never reach `u32::MAX`).
const NO_HOLDER: u32 = u32::MAX;

/// The per-channel state read by every acquisition attempt, packed into one
/// 16-byte record so the hot path (grant test, occupancy probe, release) and
/// the adaptive candidate scan touch a single dense array. Everything an
/// acquisition does *not* need — the FIFO tail, the busy-time accounting, the
/// fault flags — lives in parallel cold arrays of the [`ChannelPool`].
#[derive(Debug, Clone, Copy)]
struct HotChannel {
    /// Time at which a lazily released channel becomes free again. When the
    /// holder's tail passes with nobody waiting, no release event is scheduled;
    /// the channel simply records its future free time and the next acquirer
    /// compares against it.
    free_at: f64,
    /// The message currently holding the channel, or [`NO_HOLDER`].
    holder: u32,
    /// First waiter link node in the shared [`WaiterArena`], or [`NIL`].
    waiters_head: u32,
}

impl HotChannel {
    /// An idle channel: free since time 0, no holder, no waiters.
    const IDLE: HotChannel = HotChannel { free_at: 0.0, holder: NO_HOLDER, waiters_head: NIL };
}

/// One singly-linked FIFO node of the shared waiter storage.
#[derive(Debug, Clone, Copy)]
struct WaiterNode {
    message: MessageId,
    next: u32,
}

/// Pool-wide storage for every channel's waiter FIFO: a slab of link nodes with
/// a free list. Grows only under real contention and recycles nodes forever.
#[derive(Debug, Default)]
struct WaiterArena {
    nodes: Vec<WaiterNode>,
    free: Vec<u32>,
}

impl WaiterArena {
    fn alloc(&mut self, message: MessageId) -> u32 {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = WaiterNode { message, next: NIL };
            idx
        } else {
            let idx = self.nodes.len() as u32;
            self.nodes.push(WaiterNode { message, next: NIL });
            idx
        }
    }

    fn release(&mut self, idx: u32) -> WaiterNode {
        self.free.push(idx);
        self.nodes[idx as usize]
    }
}

/// All channels of the simulated system.
#[derive(Debug)]
pub struct ChannelPool {
    /// Hot per-channel records (see [`HotChannel`]).
    hot: Vec<HotChannel>,
    /// Last waiter link node per channel, or [`NIL`] (push-back is O(1)).
    /// Cold: touched only when a FIFO actually grows or shrinks.
    waiters_tail: Vec<u32>,
    /// Simulation time at which each current holder acquired its channel.
    /// Cold: busy-time accounting only.
    held_since: Vec<f64>,
    /// Accumulated busy time per channel. Cold: utilisation reporting only.
    busy_time: Vec<f64>,
    /// Per-flit transfer time of each channel.
    flit_times: Vec<f64>,
    /// Shared waiter-FIFO storage (see [`WaiterArena`]).
    waiters: WaiterArena,
    /// Total number of acquisitions that had to wait (contention events), for
    /// diagnostics.
    contention_events: u64,
    /// Total number of acquisitions.
    acquisitions: u64,
    /// Disabled (faulted) channels. Allocated lazily on the first
    /// [`set_disabled`](Self::set_disabled) call so fault-free runs pay only an
    /// `is_empty` check on the acquisition path.
    disabled: Vec<bool>,
    /// Number of waiter link nodes currently queued across all channels. Must
    /// equal `waiters.nodes.len() - waiters.free.len()` at all times — the
    /// invariant that proves fault aborts reclaim every arena node.
    live_waiters: usize,
}

/// Result of an acquisition attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Acquire {
    /// The channel was free and is now held by the requesting message.
    Granted,
    /// The channel is busy; the message was appended to its FIFO and an already
    /// pending hand-off (the holder's release or an earlier waiter's wakeup)
    /// will reach it.
    Queued,
    /// The channel was released lazily and becomes free at the returned time;
    /// the message is the first waiter, so the caller must schedule a wakeup
    /// ([`ChannelPool::handoff`]) at exactly that time.
    QueuedUntil(f64),
}

impl ChannelPool {
    /// Creates a pool of `count` channels with the given per-flit times.
    pub fn new(flit_times: Vec<f64>) -> Self {
        let n = flit_times.len();
        ChannelPool {
            hot: vec![HotChannel::IDLE; n],
            waiters_tail: vec![NIL; n],
            held_since: vec![0.0; n],
            busy_time: vec![0.0; n],
            flit_times,
            waiters: WaiterArena::default(),
            contention_events: 0,
            acquisitions: 0,
            disabled: Vec::new(),
            live_waiters: 0,
        }
    }

    /// Rewinds every channel to idle and forgets all waiter, fault and
    /// diagnostic state — field-for-field what [`ChannelPool::new`] produces
    /// over the same flit times, but keeping the channel-state storage, the
    /// waiter arena's node capacity and the disabled set's allocation.
    pub fn reset(&mut self) {
        debug_assert_eq!(self.live_waiters, 0, "reset with waiters still queued");
        self.hot.fill(HotChannel::IDLE);
        self.waiters_tail.fill(NIL);
        self.held_since.fill(0.0);
        self.busy_time.fill(0.0);
        self.waiters.nodes.clear();
        self.waiters.free.clear();
        self.contention_events = 0;
        self.acquisitions = 0;
        for down in &mut self.disabled {
            *down = false;
        }
        self.live_waiters = 0;
    }

    /// Number of channels in the pool.
    #[inline]
    pub fn len(&self) -> usize {
        self.hot.len()
    }

    /// `true` if the pool has no channels.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.hot.is_empty()
    }

    /// Per-flit transfer time of a channel.
    #[inline]
    pub fn flit_time(&self, ch: GlobalChannelId) -> f64 {
        self.flit_times[ch as usize]
    }

    /// Whether a channel is currently held.
    #[inline]
    pub fn is_busy(&self, ch: GlobalChannelId) -> bool {
        self.hot[ch as usize].holder != NO_HOLDER
    }

    /// The message currently holding the channel, if any.
    #[inline]
    pub fn holder(&self, ch: GlobalChannelId) -> Option<MessageId> {
        let holder = self.hot[ch as usize].holder;
        (holder != NO_HOLDER).then_some(holder)
    }

    /// Number of messages waiting on a channel (diagnostic; walks the FIFO).
    pub fn queue_len(&self, ch: GlobalChannelId) -> usize {
        let mut count = 0;
        let mut idx = self.hot[ch as usize].waiters_head;
        while idx != NIL {
            count += 1;
            idx = self.waiters.nodes[idx as usize].next;
        }
        count
    }

    /// Number of waiter link nodes ever allocated (diagnostic: the peak of
    /// simultaneous waiting across the whole pool, not per channel).
    pub fn waiter_nodes_allocated(&self) -> usize {
        self.waiters.nodes.len()
    }

    /// Fraction of acquisitions that had to wait, over the whole run.
    pub fn contention_ratio(&self) -> f64 {
        if self.acquisitions == 0 {
            0.0
        } else {
            self.contention_events as f64 / self.acquisitions as f64
        }
    }

    /// Checks the arena accounting invariant: every link node is either live in
    /// some channel's FIFO or on the free list. A violation means an aborted
    /// waiter leaked its node (or one was double-freed).
    #[inline]
    fn check_arena(&self) {
        debug_assert_eq!(
            self.waiters.nodes.len() - self.waiters.free.len(),
            self.live_waiters,
            "waiter arena leak: allocated nodes do not match live waiters"
        );
    }

    /// Appends a waiter to a channel's FIFO.
    fn push_waiter(&mut self, ch: GlobalChannelId, message: MessageId) {
        let node = self.waiters.alloc(message);
        let tail = self.waiters_tail[ch as usize];
        if tail == NIL {
            self.hot[ch as usize].waiters_head = node;
        } else {
            self.waiters.nodes[tail as usize].next = node;
        }
        self.waiters_tail[ch as usize] = node;
        self.live_waiters += 1;
        self.check_arena();
    }

    /// Removes and returns the oldest waiter of a channel, if any.
    fn pop_waiter(&mut self, ch: GlobalChannelId) -> Option<MessageId> {
        let head = self.hot[ch as usize].waiters_head;
        if head == NIL {
            return None;
        }
        let node = self.waiters.release(head);
        self.hot[ch as usize].waiters_head = node.next;
        if node.next == NIL {
            self.waiters_tail[ch as usize] = NIL;
        }
        self.live_waiters -= 1;
        self.check_arena();
        Some(node.message)
    }

    /// Number of messages currently waiting across all channels. Zero after a
    /// completed run: every waiter is eventually granted or aborted, and both
    /// paths reclaim the arena node.
    #[inline]
    pub fn live_waiters(&self) -> usize {
        self.live_waiters
    }

    /// Whether a channel is currently disabled by a fault.
    #[inline]
    pub fn is_disabled(&self, ch: GlobalChannelId) -> bool {
        !self.disabled.is_empty() && self.disabled[ch as usize]
    }

    /// Sets or clears a channel's disabled (faulted) flag. Overlapping fault
    /// targets may share channels; the flag reflects the last action applied,
    /// so callers skip redundant transitions rather than asserting on them.
    pub fn set_disabled(&mut self, ch: GlobalChannelId, down: bool) {
        if self.disabled.is_empty() {
            self.disabled = vec![false; self.hot.len()];
        }
        self.disabled[ch as usize] = down;
    }

    /// Removes and returns every waiter of a channel in FIFO order — the first
    /// step of taking a channel down. All arena nodes are reclaimed.
    pub fn drain_waiters(&mut self, ch: GlobalChannelId) -> Vec<MessageId> {
        let mut drained = Vec::new();
        while let Some(message) = self.pop_waiter(ch) {
            drained.push(message);
        }
        self.check_arena();
        drained
    }

    /// Unlinks `message` from a channel's waiter FIFO, reclaiming its arena
    /// node. Returns `false` if the message was not queued there (it is mid
    /// crossing with a pending event instead).
    pub fn remove_waiter(&mut self, ch: GlobalChannelId, message: MessageId) -> bool {
        let mut prev = NIL;
        let mut idx = self.hot[ch as usize].waiters_head;
        while idx != NIL {
            let node = self.waiters.nodes[idx as usize];
            if node.message == message {
                if prev == NIL {
                    self.hot[ch as usize].waiters_head = node.next;
                } else {
                    self.waiters.nodes[prev as usize].next = node.next;
                }
                if self.waiters_tail[ch as usize] == idx {
                    self.waiters_tail[ch as usize] = prev;
                }
                self.waiters.release(idx);
                self.live_waiters -= 1;
                self.check_arena();
                return true;
            }
            prev = idx;
            idx = node.next;
        }
        false
    }

    /// Whether a scheduled channel wakeup is still meaningful: the channel is
    /// enabled, unheld, and past any lazy free time. Fault aborts can orphan a
    /// wakeup (its waiter was removed and the channel re-acquired, re-released
    /// to a later free time, or disabled since) — the engine drops those.
    #[inline]
    pub fn can_handoff(&self, ch: GlobalChannelId, now: f64) -> bool {
        let hot = &self.hot[ch as usize];
        !self.is_disabled(ch) && hot.holder == NO_HOLDER && now >= hot.free_at
    }

    /// Attempts to acquire a channel for `message` at simulation time `now`: grants it
    /// immediately if free, otherwise queues the message in FIFO order.
    ///
    /// A channel is free when it has no holder, no earlier waiter, and any lazy
    /// release time has passed. A return of [`Acquire::QueuedUntil`] obliges the
    /// caller to schedule a [`handoff`](Self::handoff) at the returned time —
    /// the channel was released lazily (no event pending) and this message is
    /// the first waiter.
    pub fn acquire(&mut self, ch: GlobalChannelId, message: MessageId, now: f64) -> Acquire {
        debug_assert!(!self.is_disabled(ch), "acquiring a disabled channel");
        self.acquisitions += 1;
        let hot = &mut self.hot[ch as usize];
        if hot.holder == NO_HOLDER && hot.waiters_head == NIL && now >= hot.free_at {
            hot.holder = message;
            self.held_since[ch as usize] = now;
            Acquire::Granted
        } else {
            debug_assert_ne!(hot.holder, message, "message acquiring a channel twice");
            self.contention_events += 1;
            let first = hot.holder == NO_HOLDER && hot.waiters_head == NIL;
            let free_at = hot.free_at;
            self.push_waiter(ch, message);
            if first {
                Acquire::QueuedUntil(free_at)
            } else {
                Acquire::Queued
            }
        }
    }

    /// Marks the channel held by `message` as released at (the possibly future)
    /// time `at` — called when the holder's header is delivered and all release
    /// times along its path become known.
    ///
    /// If somebody is waiting, the caller must schedule a
    /// [`handoff`](Self::handoff) at exactly `at` (returned as `Some`). With no
    /// waiters the release is lazy: the channel records `free_at = at` and no
    /// event is needed — a later acquirer either finds the time passed (grant)
    /// or schedules the wakeup itself ([`Acquire::QueuedUntil`]).
    ///
    /// # Panics
    /// Panics (in debug builds) if the channel is not held by `message`.
    pub fn mark_released(
        &mut self,
        ch: GlobalChannelId,
        message: MessageId,
        at: f64,
    ) -> Option<f64> {
        let hot = &mut self.hot[ch as usize];
        debug_assert_eq!(hot.holder, message, "releasing a channel not held");
        hot.holder = NO_HOLDER;
        hot.free_at = at;
        let waiting = hot.waiters_head != NIL;
        self.busy_time[ch as usize] += at - self.held_since[ch as usize];
        if waiting {
            Some(at)
        } else {
            None
        }
    }

    /// Hands a released channel to the oldest waiter at simulation time `now`
    /// (the firing of a scheduled wakeup). Returns the new holder so the engine
    /// can resume it, or `None` if no waiter is left.
    pub fn handoff(&mut self, ch: GlobalChannelId, now: f64) -> Option<MessageId> {
        debug_assert!(self.hot[ch as usize].holder == NO_HOLDER, "hand-off on a held channel");
        debug_assert!(now >= self.hot[ch as usize].free_at, "hand-off before the channel is free");
        let next = self.pop_waiter(ch)?;
        self.hot[ch as usize].holder = next;
        self.held_since[ch as usize] = now;
        Some(next)
    }

    /// `true` if the channel is occupied at time `now`: either held by a worm's
    /// header or still draining a lazily released tail (`now < free_at`).
    #[inline]
    pub fn is_occupied(&self, ch: GlobalChannelId, now: f64) -> bool {
        let hot = &self.hot[ch as usize];
        hot.holder != NO_HOLDER || now < hot.free_at
    }

    /// Number of channels occupied at time `now` (diagnostic). Counts both held
    /// channels and lazily released channels whose free time has not yet passed,
    /// so a stuck or leaked channel cannot hide behind a cleared holder.
    pub fn busy_count(&self, now: f64) -> usize {
        (0..self.hot.len() as GlobalChannelId).filter(|&ch| self.is_occupied(ch, now)).count()
    }

    /// Time-average utilisation of one channel over `[0, now]` (fraction of time the
    /// channel was held). Returns 0 before any time has elapsed.
    pub fn utilization(&self, ch: GlobalChannelId, now: f64) -> f64 {
        if now <= 0.0 {
            return 0.0;
        }
        let in_flight = if self.hot[ch as usize].holder != NO_HOLDER {
            now - self.held_since[ch as usize]
        } else {
            0.0
        };
        ((self.busy_time[ch as usize] + in_flight) / now).clamp(0.0, 1.0)
    }

    /// `(mean, max)` utilisation over an arbitrary subset of channels at time `now`.
    pub fn utilization_summary<I: IntoIterator<Item = GlobalChannelId>>(
        &self,
        channels: I,
        now: f64,
    ) -> (f64, f64) {
        let mut count = 0usize;
        let mut sum = 0.0;
        let mut max = 0.0f64;
        for ch in channels {
            let u = self.utilization(ch, now);
            sum += u;
            max = max.max(u);
            count += 1;
        }
        if count == 0 {
            (0.0, 0.0)
        } else {
            (sum / count as f64, max)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: usize) -> ChannelPool {
        ChannelPool::new(vec![0.5; n])
    }

    #[test]
    fn grant_and_release_without_contention() {
        let mut p = pool(2);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.acquire(0, 7, 0.0), Acquire::Granted);
        assert!(p.is_busy(0));
        assert_eq!(p.holder(0), Some(7));
        assert!(!p.is_busy(1));
        // No waiters: the release is lazy (no wakeup needed). The holder is
        // cleared immediately, but the channel stays *occupied* until the
        // recorded free time passes.
        assert_eq!(p.mark_released(0, 7, 1.0), None);
        assert!(!p.is_busy(0));
        assert!(p.is_occupied(0, 0.5));
        assert!(!p.is_occupied(0, 1.0));
        assert_eq!(p.contention_ratio(), 0.0);
        assert_eq!(p.flit_time(1), 0.5);
        // After the free time has passed, the channel grants directly again.
        assert_eq!(p.acquire(0, 8, 1.0), Acquire::Granted);
        // An entirely uncontended history allocates no waiter storage at all.
        assert_eq!(p.waiter_nodes_allocated(), 0);
    }

    #[test]
    fn lazily_freed_channel_defers_early_acquirers() {
        let mut p = pool(1);
        assert_eq!(p.acquire(0, 1, 0.0), Acquire::Granted);
        assert_eq!(p.mark_released(0, 1, 5.0), None);
        // An acquire before the free time queues and must schedule the wakeup.
        assert_eq!(p.acquire(0, 2, 2.0), Acquire::QueuedUntil(5.0));
        // A second early acquirer just queues behind it.
        assert_eq!(p.acquire(0, 3, 3.0), Acquire::Queued);
        assert_eq!(p.queue_len(0), 2);
        // The wakeup grants FIFO order.
        assert_eq!(p.handoff(0, 5.0), Some(2));
        assert_eq!(p.holder(0), Some(2));
        assert_eq!(p.queue_len(0), 1);
    }

    #[test]
    fn fifo_handoff_on_release() {
        let mut p = pool(1);
        assert_eq!(p.acquire(0, 1, 0.0), Acquire::Granted);
        assert_eq!(p.acquire(0, 2, 0.1), Acquire::Queued);
        assert_eq!(p.acquire(0, 3, 0.2), Acquire::Queued);
        assert_eq!(p.queue_len(0), 2);
        // With waiters present the release demands a scheduled hand-off, which
        // grants message 2 (FIFO), then 3.
        assert_eq!(p.mark_released(0, 1, 1.0), Some(1.0));
        assert_eq!(p.handoff(0, 1.0), Some(2));
        assert_eq!(p.holder(0), Some(2));
        assert_eq!(p.mark_released(0, 2, 2.0), Some(2.0));
        assert_eq!(p.handoff(0, 2.0), Some(3));
        assert_eq!(p.mark_released(0, 3, 3.0), None);
        assert!(p.contention_ratio() > 0.0);
    }

    #[test]
    fn waiter_nodes_are_recycled_across_channels() {
        let mut p = pool(2);
        // Contend on channel 0: two link nodes get allocated.
        p.acquire(0, 1, 0.0);
        p.acquire(0, 2, 0.1);
        p.acquire(0, 3, 0.2);
        assert_eq!(p.waiter_nodes_allocated(), 2);
        p.mark_released(0, 1, 1.0);
        p.handoff(0, 1.0);
        p.mark_released(0, 2, 2.0);
        p.handoff(0, 2.0);
        assert_eq!(p.queue_len(0), 0);
        // Later contention on a *different* channel reuses the freed nodes.
        p.acquire(1, 4, 3.0);
        p.acquire(1, 5, 3.1);
        p.acquire(1, 6, 3.2);
        assert_eq!(p.queue_len(1), 2);
        assert_eq!(p.waiter_nodes_allocated(), 2, "freed link nodes must be reused");
        assert_eq!(p.mark_released(1, 4, 4.0), Some(4.0));
        assert_eq!(p.handoff(1, 4.0), Some(5));
        assert_eq!(p.queue_len(1), 1, "message 6 still waits behind the new holder");
    }

    #[test]
    fn busy_count_tracks_holders() {
        let mut p = pool(4);
        p.acquire(0, 1, 0.0);
        p.acquire(2, 1, 0.0);
        p.acquire(3, 2, 0.0);
        assert_eq!(p.busy_count(0.0), 3);
        p.mark_released(2, 1, 1.0);
        // The lazily released channel counts as occupied until its free time.
        assert_eq!(p.busy_count(0.5), 3);
        assert_eq!(p.busy_count(1.0), 2);
    }

    #[test]
    fn utilization_accounts_for_busy_time() {
        let mut p = pool(2);
        // Channel 0 busy over [0, 4] and [6, 8]; channel 1 never used.
        p.acquire(0, 1, 0.0);
        p.mark_released(0, 1, 4.0);
        p.acquire(0, 2, 6.0);
        p.mark_released(0, 2, 8.0);
        assert!((p.utilization(0, 10.0) - 0.6).abs() < 1e-12);
        assert_eq!(p.utilization(1, 10.0), 0.0);
        assert_eq!(p.utilization(0, 0.0), 0.0);
        // A currently-held channel counts its in-flight time.
        p.acquire(1, 3, 5.0);
        assert!((p.utilization(1, 10.0) - 0.5).abs() < 1e-12);
        let (mean, max) = p.utilization_summary([0u32, 1u32], 10.0);
        assert!((mean - 0.55).abs() < 1e-12);
        assert!((max - 0.6).abs() < 1e-12);
        assert_eq!(p.utilization_summary(std::iter::empty(), 10.0), (0.0, 0.0));
    }

    #[test]
    fn continuous_handoff_counts_as_continuously_busy() {
        let mut p = pool(1);
        p.acquire(0, 1, 0.0);
        p.acquire(0, 2, 1.0);
        assert_eq!(p.mark_released(0, 1, 3.0), Some(3.0));
        assert_eq!(p.handoff(0, 3.0), Some(2));
        p.mark_released(0, 2, 5.0);
        assert!((p.utilization(0, 5.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "not held")]
    fn releasing_unheld_channel_panics() {
        let mut p = pool(1);
        p.mark_released(0, 9, 0.0);
    }

    #[test]
    fn drain_waiters_returns_fifo_order_and_reclaims_nodes() {
        let mut p = pool(1);
        p.acquire(0, 1, 0.0);
        p.acquire(0, 2, 0.1);
        p.acquire(0, 3, 0.2);
        p.acquire(0, 4, 0.3);
        assert_eq!(p.live_waiters(), 3);
        assert_eq!(p.drain_waiters(0), vec![2, 3, 4]);
        assert_eq!(p.live_waiters(), 0);
        assert_eq!(p.queue_len(0), 0);
        // The nodes went back to the free list, not leaked: fresh contention
        // reuses them without growing the arena.
        p.acquire(0, 5, 1.0);
        p.acquire(0, 6, 1.1);
        assert_eq!(p.waiter_nodes_allocated(), 3);
    }

    #[test]
    fn remove_waiter_unlinks_head_middle_and_tail() {
        let mut p = pool(1);
        p.acquire(0, 1, 0.0);
        for (i, m) in [2, 3, 4, 5].into_iter().enumerate() {
            p.acquire(0, m, 0.1 + i as f64 * 0.1);
        }
        assert!(p.remove_waiter(0, 3), "middle");
        assert!(p.remove_waiter(0, 2), "head");
        assert!(p.remove_waiter(0, 5), "tail");
        assert!(!p.remove_waiter(0, 9), "absent message is reported, not invented");
        assert_eq!(p.queue_len(0), 1);
        assert_eq!(p.live_waiters(), 1);
        // The surviving waiter still hands off normally, and a push after a
        // tail removal re-links correctly.
        p.acquire(0, 6, 1.0);
        assert_eq!(p.mark_released(0, 1, 2.0), Some(2.0));
        assert_eq!(p.handoff(0, 2.0), Some(4));
        assert_eq!(p.queue_len(0), 1);
        assert_eq!(p.live_waiters(), 1);
    }

    #[test]
    fn disabled_set_is_lazy_and_gates_handoff_readiness() {
        let mut p = pool(2);
        assert!(!p.is_disabled(0));
        assert!(p.can_handoff(0, 0.0));
        p.set_disabled(0, true);
        assert!(p.is_disabled(0));
        assert!(!p.is_disabled(1));
        assert!(!p.can_handoff(0, 5.0));
        p.set_disabled(0, false);
        assert!(p.can_handoff(0, 5.0));
        // A held or still-draining channel is not ready for a hand-off either.
        p.acquire(1, 7, 0.0);
        assert!(!p.can_handoff(1, 1.0));
        p.mark_released(1, 7, 3.0);
        assert!(!p.can_handoff(1, 2.0));
        assert!(p.can_handoff(1, 3.0));
    }
}
