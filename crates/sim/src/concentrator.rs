//! Concentrator/dispatcher bridge resources.
//!
//! Each cluster owns one **concentrator** (combining ECN1 traffic bound for ICN2) and
//! one **dispatcher** (spreading ICN2 traffic into the cluster's ECN1). Following the
//! paper's "merged wormhole journey" view of the inter-cluster path (Section 3.3), the
//! simulator represents each bridge as one additional channel-like resource inserted
//! into the worm's path: a worm acquires the bridge on its way through, holds it until
//! its tail has passed (≈ one message transfer, `M·t_cs`, which is exactly the service
//! time the paper assigns to the concentrator queue in Eq. 33) and competing worms wait
//! in FIFO order — reproducing the M/D/1-like waiting the model charges as `W_d`.
//!
//! [`BridgeMap`] only performs the index bookkeeping; the actual occupancy state lives
//! in the shared [`crate::channels::ChannelPool`] together with all network channels.

use crate::channels::GlobalChannelId;
use serde::{Deserialize, Serialize};

/// Maps clusters to the global channel ids of their bridge resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BridgeMap {
    base: u32,
    clusters: u32,
}

impl BridgeMap {
    /// Creates a map for `clusters` clusters whose bridge channels start at global
    /// channel id `base`.
    pub fn new(base: u32, clusters: usize) -> Self {
        BridgeMap { base, clusters: clusters as u32 }
    }

    /// Number of bridge channels (two per cluster).
    pub fn num_channels(&self) -> usize {
        2 * self.clusters as usize
    }

    /// Global channel id of the concentrator (ECN1 → ICN2) of a cluster.
    #[inline]
    pub fn concentrate(&self, cluster: usize) -> GlobalChannelId {
        debug_assert!((cluster as u32) < self.clusters);
        self.base + 2 * cluster as u32
    }

    /// Global channel id of the dispatcher (ICN2 → ECN1) of a cluster.
    #[inline]
    pub fn dispatch(&self, cluster: usize) -> GlobalChannelId {
        debug_assert!((cluster as u32) < self.clusters);
        self.base + 2 * cluster as u32 + 1
    }

    /// `true` if the given global channel id denotes a bridge resource.
    pub fn is_bridge(&self, channel: GlobalChannelId) -> bool {
        channel >= self.base && channel < self.base + self.num_channels() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_disjoint_and_contiguous() {
        let map = BridgeMap::new(100, 4);
        assert_eq!(map.num_channels(), 8);
        let mut ids: Vec<u32> =
            (0..4).flat_map(|c| [map.concentrate(c), map.dispatch(c)]).collect();
        ids.sort_unstable();
        assert_eq!(ids, (100..108).collect::<Vec<_>>());
        assert!(map.is_bridge(100));
        assert!(map.is_bridge(107));
        assert!(!map.is_bridge(99));
        assert!(!map.is_bridge(108));
    }

    #[test]
    fn concentrate_and_dispatch_differ() {
        let map = BridgeMap::new(0, 3);
        for c in 0..3 {
            assert_ne!(map.concentrate(c), map.dispatch(c));
        }
    }
}
