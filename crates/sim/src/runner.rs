//! Simulation configuration, result reporting and (parallel) replication running.

use crate::engine::Simulation;
use crate::message::MessageClass;
use crate::stats::ClassSummary;
use crate::{Result, SimError};
use mcnet_queueing::stats::RunningStats;
use mcnet_system::TrafficConfig;
use serde::{Deserialize, Serialize};

/// Measurement protocol of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Messages discarded as warm-up (the paper uses 10,000).
    pub warmup_messages: u64,
    /// Messages whose latency is measured (the paper uses 100,000).
    pub measured_messages: u64,
    /// Additional messages generated as drain traffic so the measured messages finish
    /// under load (the paper uses 10,000).
    pub drain_messages: u64,
    /// RNG seed.
    pub seed: u64,
    /// Hard bound on the number of simulation events (guards against accidentally
    /// simulating a configuration that is deep into saturation).
    pub max_events: u64,
}

impl SimConfig {
    /// The paper's measurement protocol: 10k warm-up, 100k measured, 10k drain.
    pub fn paper(seed: u64) -> Self {
        SimConfig {
            warmup_messages: 10_000,
            measured_messages: 100_000,
            drain_messages: 10_000,
            seed,
            max_events: 1_000_000_000,
        }
    }

    /// A reduced protocol (1k/10k/1k) for sweeps where full runs are unnecessarily
    /// expensive; statistical noise grows accordingly.
    pub fn reduced(seed: u64) -> Self {
        SimConfig {
            warmup_messages: 1_000,
            measured_messages: 10_000,
            drain_messages: 1_000,
            seed,
            max_events: 200_000_000,
        }
    }

    /// A very small protocol for unit tests and examples.
    pub fn quick(seed: u64) -> Self {
        SimConfig {
            warmup_messages: 200,
            measured_messages: 2_000,
            drain_messages: 200,
            seed,
            max_events: 50_000_000,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.measured_messages == 0 {
            return Err(SimError::InvalidConfiguration {
                reason: "measured_messages must be positive".into(),
            });
        }
        if self.max_events == 0 {
            return Err(SimError::InvalidConfiguration {
                reason: "max_events must be positive".into(),
            });
        }
        Ok(())
    }
}

/// Results of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// The per-node generation rate of the run.
    pub generation_rate: f64,
    /// Mean message latency over the measured messages.
    pub mean_latency: f64,
    /// Standard deviation of the measured latencies.
    pub latency_std_dev: f64,
    /// Standard error of the mean latency.
    pub latency_std_error: f64,
    /// Largest measured latency.
    pub max_latency: f64,
    /// Approximate 99th-percentile latency.
    pub p99_latency: Option<f64>,
    /// Intra-cluster class summary.
    pub intra: ClassSummary,
    /// Inter-cluster class summary.
    pub inter: ClassSummary,
    /// Number of measured messages delivered.
    pub measured_messages: u64,
    /// Number of messages generated in total (all phases).
    pub generated_messages: u64,
    /// Number of messages delivered in total (all phases). Equals
    /// `generated_messages` on a fault-free run; under fault injection,
    /// `delivered_messages + dropped_messages == generated_messages` at the end
    /// of a completed run.
    pub delivered_messages: u64,
    /// Retransmissions scheduled after fault aborts (zero without faults).
    pub retransmits: u64,
    /// Messages dropped after exhausting their retry budget (zero without
    /// faults).
    pub dropped_messages: u64,
    /// Mean of latency-per-attempt over the measured deliveries; equals
    /// `mean_latency` on a fault-free run.
    pub mean_attempt_latency: f64,
    /// The routing policy of the run, in spec spelling (`"deterministic"`,
    /// `"adaptive_torus"`, `"randomized_updown"`).
    pub routing: String,
    /// Headers that took a minimal hop other than the dimension-order one
    /// (adaptive torus), or messages whose randomized tree path differed from
    /// the deterministic one. Zero under deterministic routing.
    pub adaptive_misroutes: u64,
    /// Headers that found every adaptive candidate busy and fell back on the
    /// dateline escape class. Zero under deterministic routing (and on trees,
    /// which have no escape class).
    pub escape_fallbacks: u64,
    /// Order-stable FNV-1a digest of the delivered-message stream
    /// `(generation index, class, delivery-time bits)`. Two runs with equal
    /// digests delivered the same messages at bit-identical times in the same
    /// order — the replay/equivalence handle for goldens and CI.
    pub digest: u64,
    /// Windowed delivery/drop/latency series showing the degradation dip and
    /// recovery around fault windows. Empty on fault-free runs.
    pub time_series: Vec<crate::stats::LatencyWindow>,
    /// Fraction of channel acquisitions that had to wait.
    pub contention_ratio: f64,
    /// Largest time-average utilisation over all network channels.
    pub max_channel_utilization: f64,
    /// Mean time-average utilisation of the concentrator/dispatcher bridges,
    /// or `None` on fabrics without bridges (the torus). Bridge-less runs used
    /// to report `0.0` — a misleading "bridges exist and are idle"; the absence
    /// of the resource is now explicit (same bug class as `halfwidth_95`).
    pub mean_bridge_utilization: Option<f64>,
    /// Largest time-average utilisation of any concentrator/dispatcher bridge,
    /// or `None` on fabrics without bridges.
    pub max_bridge_utilization: Option<f64>,
    /// Total simulated time.
    pub simulated_time: f64,
    /// Number of events processed (future-event-list events plus batched
    /// arrivals, so the count stays comparable across engine generations).
    pub events: u64,
    /// Events processed per generated message — the engine-efficiency number
    /// the hot-path work drives down (see PERFORMANCE.md). Regressions in
    /// event accounting show up here directly instead of hiding inside
    /// wall-clock noise.
    pub events_per_message: f64,
    /// RNG seed of the run.
    pub seed: u64,
}

/// Drives a built (or freshly reset) simulation to completion and extracts
/// its report. Takes the simulation by `&mut` so callers can
/// [`reset`](Simulation::reset) and re-run it without reallocating.
pub(crate) fn report_from(
    sim: &mut Simulation,
    traffic: &TrafficConfig,
    config: &SimConfig,
) -> Result<SimReport> {
    sim.run()?;
    let (_, max_channel_utilization) = sim.network_utilization();
    let has_bridges = matches!(sim.backend(), crate::backend::FabricBackend::Tree(_));
    let (mean_bridge_utilization, max_bridge_utilization) = sim.bridge_utilization();
    let routing = sim.backend().routing_policy();
    let stats = sim.stats();
    Ok(SimReport {
        generation_rate: traffic.generation_rate,
        mean_latency: stats.mean_latency(),
        latency_std_dev: stats.latency_std_dev(),
        latency_std_error: stats.latency_std_error(),
        max_latency: stats.max_latency(),
        p99_latency: stats.latency_quantile(0.99),
        intra: stats.class_summary(MessageClass::Intra),
        inter: stats.class_summary(MessageClass::Inter),
        measured_messages: stats.delivered_measured(),
        generated_messages: stats.generated(),
        delivered_messages: stats.delivered(),
        retransmits: stats.retransmits(),
        dropped_messages: stats.dropped(),
        mean_attempt_latency: stats.mean_attempt_latency(),
        routing: routing.spec_name().to_string(),
        adaptive_misroutes: stats.adaptive_misroutes(),
        escape_fallbacks: stats.escape_fallbacks(),
        digest: stats.digest(),
        time_series: stats.time_series(),
        contention_ratio: sim.pool().contention_ratio(),
        max_channel_utilization,
        mean_bridge_utilization: has_bridges.then_some(mean_bridge_utilization),
        max_bridge_utilization: has_bridges.then_some(max_bridge_utilization),
        simulated_time: sim.now(),
        events: sim.events_processed(),
        events_per_message: if stats.generated() > 0 {
            sim.events_processed() as f64 / stats.generated() as f64
        } else {
            0.0
        },
        seed: config.seed,
    })
}

/// Aggregate of several independent replications of the same configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicatedReport {
    /// Per-replication reports.
    pub replications: Vec<SimReport>,
    /// Mean of the per-replication mean latencies.
    pub mean_latency: f64,
    /// 95% confidence-interval half-width over the replication means, or `None`
    /// when it cannot be estimated (fewer than two replications). A single
    /// replication used to be reported as a half-width of `0.0` — false perfect
    /// confidence; the absence of an estimate is now explicit.
    pub halfwidth_95: Option<f64>,
}

/// The shared replication driver: fans per-replication configs over the
/// worker pool and aggregates in replication order, for any backend's
/// single-run function. Each worker thread carries one engine cache slot, so
/// a run function built on [`Scenario::run_point_reusing`] resets one engine
/// per worker instead of allocating one per replication.
/// [`Scenario::replicate`] is the public face.
pub(crate) fn replicate_with<F>(
    config: &SimConfig,
    replications: usize,
    run: F,
) -> Result<ReplicatedReport>
where
    F: Fn(&mut Option<Simulation>, SimConfig) -> Result<SimReport> + Sync,
{
    replicate_pooled(config, replications, &mut Vec::new(), run)
}

/// [`replicate_with`] against a caller-held slot pool: the per-worker engine
/// caches live in `slots` and survive the call, so a driver running many
/// replication sets back to back (a replicated sweep, a campaign column)
/// builds exactly `max_workers()` engines over its whole lifetime instead of
/// one set per batch. `N` replications on `W` workers build at most `W`
/// engines — and zero new ones once the pool is warm.
pub(crate) fn replicate_pooled<F>(
    config: &SimConfig,
    replications: usize,
    slots: &mut Vec<Option<Simulation>>,
    run: F,
) -> Result<ReplicatedReport>
where
    F: Fn(&mut Option<Simulation>, SimConfig) -> Result<SimReport> + Sync,
{
    if replications == 0 {
        return Err(SimError::InvalidConfiguration {
            reason: "at least one replication is required".into(),
        });
    }
    let results = mcnet_system::parallel::parallel_map_reusing(
        (0..replications).collect(),
        slots,
        |slot, _, r| run(slot, SimConfig { seed: config.seed.wrapping_add(r as u64), ..*config }),
    );

    let mut replication_reports = Vec::with_capacity(replications);
    for r in results {
        replication_reports.push(r?);
    }
    Ok(aggregate_replications(replication_reports))
}

/// Aggregates per-replication reports (in replication order) into a
/// [`ReplicatedReport`] — the one aggregation both the pool-fanned
/// [`replicate_with`] and the sequential
/// [`Scenario::execute_reusing`](crate::scenario::Scenario::execute_reusing)
/// path share, so a campaign cell and a standalone `replicate` produce
/// bit-identical aggregates from the same per-replication reports.
pub(crate) fn aggregate_replications(replication_reports: Vec<SimReport>) -> ReplicatedReport {
    let mut stats = RunningStats::new();
    for r in &replication_reports {
        stats.push(r.mean_latency);
    }
    let halfwidth = mcnet_queueing::stats::confidence_interval_halfwidth(&stats, 0.95);
    ReplicatedReport {
        mean_latency: stats.mean(),
        halfwidth_95: halfwidth.is_finite().then_some(halfwidth),
        replications: replication_reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use mcnet_system::organizations;

    fn tree_scenario(config: SimConfig) -> Scenario {
        Scenario::builder()
            .tree(organizations::small_test_org())
            .traffic(TrafficConfig::uniform(8, 256.0, 1e-3).unwrap())
            .config(config)
            .build()
            .unwrap()
    }

    fn torus_scenario(config: SimConfig) -> Scenario {
        Scenario::builder()
            .torus(mcnet_system::TorusSystem::new(4, 2).unwrap())
            .traffic(TrafficConfig::uniform(8, 256.0, 1e-3).unwrap())
            .config(config)
            .build()
            .unwrap()
    }

    #[test]
    fn config_presets_are_valid() {
        assert!(SimConfig::paper(1).validate().is_ok());
        assert!(SimConfig::reduced(1).validate().is_ok());
        assert!(SimConfig::quick(1).validate().is_ok());
        let bad = SimConfig { measured_messages: 0, ..SimConfig::quick(1) };
        assert!(bad.validate().is_err());
        let bad = SimConfig { max_events: 0, ..SimConfig::quick(1) };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn report_fields_are_consistent() {
        let report = tree_scenario(SimConfig::quick(5)).run().unwrap();
        assert_eq!(report.measured_messages, 2_000);
        assert_eq!(report.generated_messages, 2_400);
        assert!(report.mean_latency > 0.0);
        assert!(report.max_latency >= report.mean_latency);
        assert!(report.simulated_time > 0.0);
        assert!(report.events > 0);
        // Every message costs at least generation + header + tail.
        assert!(report.events_per_message >= 3.0, "{}", report.events_per_message);
        assert!(
            (report.events_per_message - report.events as f64 / report.generated_messages as f64)
                .abs()
                < 1e-12
        );
        assert!(report.intra.count + report.inter.count == report.measured_messages);
        assert!(report.p99_latency.unwrap_or(f64::MAX) >= report.mean_latency * 0.5);
        // Fault-free runs: everything generated is delivered, nothing retries
        // or drops, per-attempt latency collapses onto the plain mean, the
        // time series stays empty — and the digest is a real fold, not the
        // untouched FNV offset basis.
        assert_eq!(report.delivered_messages, report.generated_messages);
        assert_eq!(report.retransmits, 0);
        assert_eq!(report.dropped_messages, 0);
        assert_eq!(report.mean_attempt_latency.to_bits(), report.mean_latency.to_bits());
        assert!(report.time_series.is_empty());
        assert_ne!(report.digest, 0xcbf2_9ce4_8422_2325);
        // Utilisations are proper fractions and the bridges see real load at this rate.
        assert!((0.0..=1.0).contains(&report.max_channel_utilization));
        let mean_bridge = report.mean_bridge_utilization.expect("tree fabrics have bridges");
        let max_bridge = report.max_bridge_utilization.expect("tree fabrics have bridges");
        assert!((0.0..=1.0).contains(&max_bridge));
        assert!(mean_bridge > 0.0);
        assert!(max_bridge >= mean_bridge);
    }

    #[test]
    fn replications_run_in_parallel_and_aggregate() {
        let scenario = tree_scenario(SimConfig::quick(100));
        let agg = scenario.replicate(3).unwrap();
        assert_eq!(agg.replications.len(), 3);
        // Different seeds give different (but close) means.
        let means: Vec<f64> = agg.replications.iter().map(|r| r.mean_latency).collect();
        assert!(means.iter().any(|&m| (m - means[0]).abs() > 0.0));
        let avg = means.iter().sum::<f64>() / means.len() as f64;
        assert!((agg.mean_latency - avg).abs() < 1e-12);
        assert!(agg.halfwidth_95.expect("3 replications give a CI") >= 0.0);
        assert!(tree_scenario(SimConfig::quick(1)).replicate(0).is_err());
    }

    #[test]
    fn single_replication_reports_no_confidence_interval() {
        // One replication used to report halfwidth 0.0 — false perfect
        // confidence. It must now be explicit about having no estimate.
        let scenario = tree_scenario(SimConfig::quick(5));
        let one = scenario.replicate(1).unwrap();
        assert_eq!(one.replications.len(), 1);
        assert_eq!(one.halfwidth_95, None);
        let two = scenario.replicate(2).unwrap();
        assert!(two.halfwidth_95.is_some());
    }

    #[test]
    fn torus_simulation_produces_a_full_report() {
        let report = torus_scenario(SimConfig::quick(5)).run().unwrap();
        assert_eq!(report.measured_messages, 2_000);
        assert_eq!(report.generated_messages, 2_400);
        assert!(report.mean_latency > 0.0);
        assert!(report.max_latency >= report.mean_latency);
        assert!(report.intra.count + report.inter.count == report.measured_messages);
        // No bridges exist on the torus: the report says so instead of faking
        // an idle utilisation of 0.0.
        assert_eq!(report.mean_bridge_utilization, None);
        assert_eq!(report.max_bridge_utilization, None);
        assert!((0.0..=1.0).contains(&report.max_channel_utilization));
        assert!(report.events > 0);
    }

    #[test]
    fn torus_replications_share_the_replication_contract() {
        let scenario = torus_scenario(SimConfig::quick(100));
        let agg = scenario.replicate(3).unwrap();
        assert_eq!(agg.replications.len(), 3);
        // Replication 0 equals the standalone run with the same seed.
        let standalone = scenario.run().unwrap();
        assert_eq!(agg.replications[0].mean_latency.to_bits(), standalone.mean_latency.to_bits());
        assert!(agg.halfwidth_95.is_some());
        assert!(scenario.replicate(0).is_err());
    }
}
