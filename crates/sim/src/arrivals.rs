//! Batched message generation: the per-node next-arrival queue.
//!
//! Every node runs an independent Poisson process, so at any instant the engine
//! knows each node's *next* arrival time. Scheduling those arrivals through the
//! future-event list costs a queue round-trip per message (plus a popped no-op
//! event per node at the end of the generation phase). The [`ArrivalQueue`]
//! keeps them out of the future-event list entirely: a flat index-heap of
//! `(time, node)` pairs, one slot per node, where drawing a node's next arrival
//! is a [`replace_min`](ArrivalQueue::replace_min) — a single in-place
//! sift-down, no allocation, no push/pop pair. The engine's main loop fires
//! whichever of (earliest future event, earliest arrival) comes first;
//! at equal instants the future-event list wins (a fixed, documented
//! tie-break — see `PERFORMANCE.md`).
//!
//! Ordering among arrivals is by `(time, node)`, so runs remain fully
//! deterministic even if two nodes' exponential draws ever coincide exactly.

/// A min-heap of per-node next-arrival times.
#[derive(Debug, Clone, Default)]
pub struct ArrivalQueue {
    /// Binary min-heap ordered by `(time, node)`.
    heap: Vec<(f64, u32)>,
}

impl ArrivalQueue {
    /// Creates an empty queue with room for `nodes` entries.
    pub fn with_capacity(nodes: usize) -> Self {
        ArrivalQueue { heap: Vec::with_capacity(nodes) }
    }

    /// Number of pending arrivals.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no arrival is pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The earliest pending `(time, node)`, if any.
    #[inline]
    pub fn peek(&self) -> Option<(f64, u32)> {
        self.heap.first().copied()
    }

    /// Adds a node's first arrival (used while priming; `O(log n)` sift-up).
    pub fn push(&mut self, time: f64, node: u32) {
        self.heap.push((time, node));
        self.sift_up(self.heap.len() - 1);
    }

    /// Replaces the earliest arrival (the one just fired) with the same node's
    /// next draw — one sift-down, the whole cost of keeping a node's Poisson
    /// process alive.
    ///
    /// # Panics
    /// Panics if the queue is empty (debug) or used before a fire (the new time
    /// must not precede the fired one, so the root only ever moves down).
    pub fn replace_min(&mut self, time: f64) {
        debug_assert!(!self.heap.is_empty(), "replace_min on an empty arrival queue");
        debug_assert!(time >= self.heap[0].0, "a node's next arrival precedes its last");
        self.heap[0].0 = time;
        self.sift_down(0);
    }

    /// Removes and returns the earliest arrival — used when its node's source
    /// is exhausted (finite traces) and has no next draw to re-arm with.
    pub fn pop_min(&mut self) -> Option<(f64, u32)> {
        if self.heap.is_empty() {
            return None;
        }
        let min = self.heap.swap_remove(0);
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        Some(min)
    }

    /// Removes every pending arrival (the generation phase is over).
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    #[inline]
    fn less(a: (f64, u32), b: (f64, u32)) -> bool {
        a.0 < b.0 || (a.0 == b.0 && a.1 < b.1)
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if Self::less(self.heap[i], self.heap[parent]) {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let (left, right) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if left < n && Self::less(self.heap[left], self.heap[smallest]) {
                smallest = left;
            }
            if right < n && Self::less(self.heap[right], self.heap[smallest]) {
                smallest = right;
            }
            if smallest == i {
                break;
            }
            self.heap.swap(i, smallest);
            i = smallest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_fire_in_time_then_node_order() {
        let mut q = ArrivalQueue::with_capacity(4);
        q.push(3.0, 0);
        q.push(1.0, 1);
        q.push(1.0, 2); // same instant as node 1: node index breaks the tie
        q.push(2.0, 3);
        assert_eq!(q.len(), 4);
        assert_eq!(q.peek(), Some((1.0, 1)));
        q.replace_min(5.0);
        assert_eq!(q.peek(), Some((1.0, 2)));
        q.replace_min(4.0);
        assert_eq!(q.peek(), Some((2.0, 3)));
        q.replace_min(6.0);
        assert_eq!(q.peek(), Some((3.0, 0)));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek(), None);
    }

    #[test]
    fn pop_min_retires_exhausted_nodes_in_order() {
        let mut q = ArrivalQueue::with_capacity(4);
        q.push(3.0, 0);
        q.push(1.0, 1);
        q.push(1.0, 2);
        q.push(2.0, 3);
        assert_eq!(q.pop_min(), Some((1.0, 1)));
        assert_eq!(q.pop_min(), Some((1.0, 2)));
        // Interleaves with re-arms: the remaining heap stays ordered.
        q.replace_min(4.0);
        assert_eq!(q.pop_min(), Some((3.0, 0)));
        assert_eq!(q.pop_min(), Some((4.0, 3)));
        assert_eq!(q.pop_min(), None);
    }

    #[test]
    fn replace_min_keeps_the_heap_ordered_over_many_draws() {
        // A deterministic pseudo-Poisson workload: each fire re-arms the node
        // with a quasi-random increment; the observed fire times must be
        // globally non-decreasing.
        let mut q = ArrivalQueue::with_capacity(8);
        for node in 0..8u32 {
            q.push(f64::from(node % 3) + 0.1, node);
        }
        let mut last = 0.0f64;
        for step in 0..1000u64 {
            let (time, node) = q.peek().unwrap();
            assert!(time >= last, "step {step}: {time} < {last}");
            last = time;
            let increment = 0.05 + ((step * 7 + u64::from(node) * 13) % 11) as f64 * 0.11;
            q.replace_min(time + increment);
        }
        assert_eq!(q.len(), 8);
    }
}
