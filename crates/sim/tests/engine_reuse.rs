//! Pins the replication fast path to the fresh-engine baseline, bit for bit.
//!
//! `Scenario::replicate` and `Scenario::sweep_replicated` run every
//! replication through a cached per-worker engine that is `reset` between
//! runs. The engine's reset contract promises the reuse is invisible: this
//! test replays the same replication plans through freshly built engines
//! (`Scenario::run`, one engine per run) and requires the full `SimReport`s —
//! including the order-sensitive FNV delivery digests — to match exactly,
//! across both fabrics, all three routing policies, and a faulted spec whose
//! disabled-set and retry state must not leak between runs.

use mcnet_sim::fault::{BridgeUnit, FaultAction, FaultEvent, FaultPlan, FaultTarget, RingDir};
use mcnet_sim::policy::RoutingPolicy;
use mcnet_sim::scenario::Scenario;
use mcnet_sim::{SimConfig, SimReport};
use mcnet_system::{organizations, TorusSystem, TrafficConfig};

const REPS: usize = 3;

fn config() -> SimConfig {
    SimConfig {
        warmup_messages: 30,
        measured_messages: 400,
        drain_messages: 40,
        seed: 7,
        max_events: 5_000_000,
    }
}

fn tree_scenario(policy: RoutingPolicy, faults: Option<FaultPlan>) -> Scenario {
    let mut b = Scenario::builder()
        .tree(organizations::small_test_org())
        .traffic(TrafficConfig::uniform(32, 256.0, 1e-3).unwrap())
        .config(config())
        .routing(policy);
    if let Some(plan) = faults {
        b = b.faults(plan);
    }
    b.build().unwrap()
}

fn torus_scenario(policy: RoutingPolicy, faults: Option<FaultPlan>) -> Scenario {
    let mut b = Scenario::builder()
        .torus(TorusSystem::new(4, 2).unwrap())
        .traffic(TrafficConfig::uniform(32, 256.0, 1e-3).unwrap())
        .config(config())
        .routing(policy);
    if let Some(plan) = faults {
        b = b.faults(plan);
    }
    b.build().unwrap()
}

fn tree_faults() -> FaultPlan {
    FaultPlan::new(vec![
        FaultEvent {
            at: 50.0,
            target: FaultTarget::Bridge { cluster: 0, unit: BridgeUnit::Concentrator },
            action: FaultAction::Down,
        },
        FaultEvent {
            at: 400.0,
            target: FaultTarget::Bridge { cluster: 0, unit: BridgeUnit::Concentrator },
            action: FaultAction::Up,
        },
    ])
}

fn torus_faults() -> FaultPlan {
    FaultPlan::new(vec![
        FaultEvent {
            at: 50.0,
            target: FaultTarget::TorusLink { node: 5, dim: 0, dir: RingDir::Plus },
            action: FaultAction::Down,
        },
        FaultEvent {
            at: 400.0,
            target: FaultTarget::TorusLink { node: 5, dim: 0, dir: RingDir::Plus },
            action: FaultAction::Up,
        },
    ])
}

/// Fresh-engine baseline: one newly built engine per replication, the seed
/// schedule `seed … seed+n-1` the replication contract promises.
fn fresh_replications(scenario: &Scenario, n: usize) -> Vec<SimReport> {
    let base = scenario.config().seed;
    (0..n).map(|r| scenario.clone().with_seed(base.wrapping_add(r as u64)).run().unwrap()).collect()
}

fn assert_replicate_matches_fresh(scenario: Scenario, label: &str) {
    let fresh = fresh_replications(&scenario, REPS);
    let pooled = scenario.replicate(REPS).unwrap();
    for (r, (got, want)) in pooled.replications.iter().zip(&fresh).enumerate() {
        assert_eq!(
            got.digest, want.digest,
            "{label}: replication {r} delivery digest diverged under engine reuse"
        );
    }
    assert_eq!(pooled.replications, fresh, "{label}: reused-engine reports diverged");
}

#[test]
fn replicate_is_bit_identical_to_fresh_engines() {
    assert_replicate_matches_fresh(
        tree_scenario(RoutingPolicy::Deterministic, None),
        "tree/deterministic",
    );
    assert_replicate_matches_fresh(
        tree_scenario(RoutingPolicy::RandomizedUpDown, None),
        "tree/randomized",
    );
    assert_replicate_matches_fresh(
        torus_scenario(RoutingPolicy::Deterministic, None),
        "torus/deterministic",
    );
    assert_replicate_matches_fresh(
        torus_scenario(RoutingPolicy::AdaptiveTorus { adaptive_vcs: 2 }, None),
        "torus/adaptive",
    );
}

#[test]
fn replicate_is_bit_identical_under_faults() {
    assert_replicate_matches_fresh(
        tree_scenario(RoutingPolicy::Deterministic, Some(tree_faults())),
        "tree/deterministic/faulted",
    );
    assert_replicate_matches_fresh(
        torus_scenario(RoutingPolicy::AdaptiveTorus { adaptive_vcs: 2 }, Some(torus_faults())),
        "torus/adaptive/faulted",
    );
}

/// `sweep_replicated` threads ONE engine pool through every point; each
/// point must still match per-point fresh engines at the point's rate.
#[test]
fn sweep_replicated_is_bit_identical_to_fresh_engines() {
    let rates = [5e-4, 1e-3, 2e-3];
    for (scenario, label) in [
        (tree_scenario(RoutingPolicy::RandomizedUpDown, None), "tree/randomized"),
        (tree_scenario(RoutingPolicy::Deterministic, Some(tree_faults())), "tree/faulted"),
        (torus_scenario(RoutingPolicy::AdaptiveTorus { adaptive_vcs: 2 }, None), "torus/adaptive"),
    ] {
        let swept = scenario.sweep_replicated(&rates, REPS).unwrap();
        assert_eq!(swept.len(), rates.len());
        for (i, (&rate, outcome)) in rates.iter().zip(&swept).enumerate() {
            let point = Scenario::builder();
            let point = match scenario.fabric() {
                mcnet_sim::scenario::Fabric::Tree(s) => point.tree(s.clone()),
                mcnet_sim::scenario::Fabric::Torus(t) => point.torus(t.clone()),
            };
            let mut point = point
                .traffic(scenario.traffic().with_rate(rate).unwrap())
                .config(*scenario.config())
                .routing(scenario.routing());
            if let Some(plan) = scenario.faults() {
                point = point.faults(plan.clone());
            }
            let point = point.build().unwrap();
            let fresh = fresh_replications(&point, REPS);
            let got = outcome.as_ref().unwrap();
            assert_eq!(
                got.replications, fresh,
                "{label}: sweep point {i} (rate {rate}) diverged under the shared engine pool"
            );
        }
    }
}
