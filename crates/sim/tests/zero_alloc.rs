//! Pins the replication fast path at **zero steady-state allocations**.
//!
//! The engine's contract (`Simulation::reset`) is that every per-run
//! structure — the event calendar and its rebuild scratch, the channel pool
//! and waiter arena, the message slab, the interned route table, the arrival
//! heap, the histogram bins and the adaptive scratch buffers — retains its
//! grown capacity across runs. This test enforces the contract at the
//! allocator: after a short warm-up over the same seed set, re-running the
//! very same replication loop must hit the global allocator **zero** times.
//!
//! The counting allocator lives in this dedicated integration-test binary
//! (one `#[test]`, so no concurrent test pollutes the counters). The library
//! itself remains free of `unsafe`; only this harness shims the allocator.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static REALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        REALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocation_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed) + REALLOCS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_replication_runs_do_not_allocate() {
    use mcnet_sim::engine::Simulation;
    use mcnet_sim::{SimConfig, TrafficSourceSpec};
    use mcnet_system::{organizations, TrafficConfig};

    let system = organizations::small_test_org();
    let traffic = TrafficConfig::uniform(32, 256.0, 2e-3).unwrap();
    let base = SimConfig::quick(100);
    let seeds: [u64; 3] = [100, 101, 102];

    let mut sim = Simulation::new(&system, &traffic, &base).unwrap();
    sim.run().unwrap();

    // Warm-up: two full passes over the measured seed set. The first pass
    // grows every arena to the high-water mark of these exact runs (the route
    // table interns lazily, so each seed's destination pairs materialize on
    // first use); the second pass proves the mark is stable before measuring.
    for _ in 0..2 {
        for &seed in &seeds {
            let cfg = SimConfig { seed, ..base };
            sim.reset(&traffic, &TrafficSourceSpec::Poisson, &cfg, None).unwrap();
            sim.run().unwrap();
        }
    }

    // Measured region: three more reset+run replications over the same seeds.
    let before = allocation_count();
    assert!(before > 0, "counting allocator is not wired in");
    let mut delivered = 0u64;
    for &seed in &seeds {
        let cfg = SimConfig { seed, ..base };
        sim.reset(&traffic, &TrafficSourceSpec::Poisson, &cfg, None).unwrap();
        sim.run().unwrap();
        delivered += sim.events_processed();
    }
    let grew = allocation_count() - before;

    assert!(delivered > 0, "measured runs processed no events");
    assert_eq!(
        grew, 0,
        "steady-state reset+run allocated {grew} times across 3 replications; \
         a per-run arena lost its capacity retention"
    );
}
